#include "core/dimensioning.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <stdexcept>

#include "engine/analysis/analysis_cache.h"
#include "engine/analysis/app_analysis.h"
#include "engine/cache/disk_cache.h"
#include "engine/cache/solution_cache.h"
#include "engine/oracle/incremental_oracle.h"
#include "engine/oracle/snapshot_cache.h"
#include "engine/oracle/verdict_cache.h"
#include "engine/parallel_for.h"
#include "support/check.h"

namespace ttdim::core {

namespace {

using Clock = std::chrono::steady_clock;
using engine::oracle::ms_since;

constexpr const char* kSolutionDiskSpace = "solution";

void encode_assignment(support::codec::Encoder& enc,
                       const mapping::SlotAssignment& assignment) {
  enc.u32(static_cast<std::uint32_t>(assignment.slots.size()));
  for (const std::vector<int>& slot : assignment.slots) enc.ints(slot);
}

bool decode_assignment(support::codec::Decoder& dec,
                       mapping::SlotAssignment& assignment) {
  assignment.slots.clear();
  std::uint32_t nslots = 0;
  if (!dec.u32(nslots) || nslots > dec.remaining() / 4) return false;
  assignment.slots.resize(nslots);
  for (std::vector<int>& slot : assignment.slots)
    if (!dec.ints(slot)) return false;
  return true;
}

}  // namespace

SolveKey SolveKey::of(const std::vector<AppSpec>& specs,
                      const SolveOptions& options) {
  SolveKey key;
  for (const AppSpec& spec : specs) {
    // Length-prefixed name: no designer-chosen string can collide with
    // the delimiters of the serialization around it.
    key.canonical += "app:";
    key.canonical += std::to_string(spec.name.size());
    key.canonical += ':';
    key.canonical += spec.name;
    key.canonical += ';';
    control::append_canonical(key.canonical, spec.plant);
    key.canonical += "kt=";
    linalg::append_canonical_bits(key.canonical, spec.kt);
    key.canonical += "ke=";
    linalg::append_canonical_bits(key.canonical, spec.ke);
    key.canonical += "r=";
    key.canonical += std::to_string(spec.min_interarrival);
    key.canonical += ";j*=";
    key.canonical += std::to_string(spec.settling_requirement);
    key.canonical += ';';
  }
  // Result-affecting options only. The memoize/cache/thread knobs are
  // excluded on purpose: they never change the result (pinned by the
  // fingerprint-equality tests), so warm and cold configurations share
  // entries.
  key.canonical += "opt:";
  control::append_canonical(key.canonical, options.settling);
  key.canonical += "g=";
  key.canonical += std::to_string(options.tw_granularity);
  key.canonical += ";d=";
  key.canonical += std::to_string(options.max_disturbances_per_app);
  key.canonical += ";s=";
  key.canonical += options.require_switching_stability ? '1' : '0';
  key.canonical += ";p=";
  key.canonical += std::to_string(static_cast<int>(options.policy));
  key.canonical += ';';
  key.hash = engine::oracle::fnv1a(key.canonical);
  return key;
}

void encode_solution(support::codec::Encoder& enc, const Solution& solution) {
  enc.u32(static_cast<std::uint32_t>(solution.apps.size()));
  for (const AppSolution& app : solution.apps) {
    enc.str(app.spec.name);
    control::encode(enc, app.spec.plant);
    linalg::encode(enc, app.spec.kt);
    linalg::encode(enc, app.spec.ke);
    enc.i32(app.spec.min_interarrival);
    enc.i32(app.spec.settling_requirement);
    switching::encode(enc, app.tables);
    verify::encode(enc, app.timing);
    control::encode(enc, app.stability);
  }
  encode_assignment(enc, solution.proposed);
  encode_assignment(enc, solution.baseline_np);
  encode_assignment(enc, solution.baseline_delayed);
}

bool decode_solution(support::codec::Decoder& dec, Solution& solution) {
  solution = Solution{};
  std::uint32_t napps = 0;
  if (!dec.u32(napps) || napps > dec.remaining()) return false;
  solution.apps.reserve(napps);
  for (std::uint32_t i = 0; i < napps; ++i) {
    std::string name;
    if (!dec.str(name)) return false;
    std::optional<control::DiscreteLti> plant = control::decode_lti(dec);
    if (!plant) return false;
    AppSpec spec{std::move(name), *std::move(plant), {}, {}, 0, 0};
    if (!linalg::decode(dec, spec.kt) || !linalg::decode(dec, spec.ke) ||
        !dec.i32(spec.min_interarrival) || !dec.i32(spec.settling_requirement))
      return false;
    AppSolution app{std::move(spec), {}, {}, {}};
    if (!switching::decode(dec, app.tables) ||
        !verify::decode(dec, app.timing) ||
        !control::decode(dec, app.stability))
      return false;
    solution.apps.push_back(std::move(app));
  }
  return decode_assignment(dec, solution.proposed) &&
         decode_assignment(dec, solution.baseline_np) &&
         decode_assignment(dec, solution.baseline_delayed);
}

double Solution::saving_vs_baseline() const {
  const int baseline = std::min(baseline_np.slot_count(),
                                baseline_delayed.slot_count());
  if (baseline <= 0) return 0.0;
  return 1.0 - static_cast<double>(proposed.slot_count()) / baseline;
}

Solution solve(const std::vector<AppSpec>& specs, const SolveOptions& options) {
  TTDIM_EXPECTS(!specs.empty());
  const auto t_solve = Clock::now();

  // Disk-tier accounting: SolveStats reports the delta of the shared
  // DiskCache's monotonic counters across this solve (the
  // analysis_evictions idiom) — approximate under concurrent sharing,
  // exact otherwise.
  engine::cache::DiskCache* const disk = options.disk_cache.get();
  engine::cache::DiskCacheStats disk_before;
  if (disk != nullptr) disk_before = disk->stats();
  const auto stamp_disk = [&](engine::oracle::SolveStats& stats) {
    if (disk == nullptr) return;
    const engine::cache::DiskCacheStats now = disk->stats();
    stats.disk_hits = now.hits - disk_before.hits;
    stats.disk_misses = now.misses - disk_before.misses;
    stats.disk_writes = now.writes - disk_before.writes;
    stats.disk_trims = now.trims - disk_before.trims;
  };

  // ---- Whole-solve result cache (engine/cache/solution_cache.h). ---------
  // A hit short-circuits the entire pipeline; the returned Solution is
  // the stored one with fresh per-request stats. The disk "solution"
  // space sits under the memory cache, so a fresh process answers repeat
  // requests on the first call.
  std::optional<SolveKey> solve_key;
  if (options.solution_cache != nullptr) {
    solve_key = SolveKey::of(specs, options);
    const auto serve_hit = [&](Solution out) {
      out.stats = {};
      out.stats.solution_hits = 1;
      out.stats.analysis_threads =
          engine::resolve_threads(options.analysis_threads);
      stamp_disk(out.stats);
      out.stats.total_ms = ms_since(t_solve);
      return out;
    };
    if (auto cached = options.solution_cache->lookup(*solve_key))
      return serve_hit(*cached);
    if (disk != nullptr) {
      if (const auto blob = disk->get(kSolutionDiskSpace, solve_key->canonical)) {
        support::codec::Decoder dec(*blob);
        Solution stored;
        if (decode_solution(dec, stored) && dec.done()) {
          options.solution_cache->insert(*solve_key, stored);
          return serve_hit(std::move(stored));
        }
        // Undecodable payload in a structurally valid entry (e.g. a
        // codec change without a format bump): fall through to a cold
        // solve; the entry ages out via the trim.
      }
    }
  }

  Solution solution;

  // ---- Per-application analysis (engine/analysis). -----------------------
  // Stability certificates and dwell tables are pure functions of the
  // plant/gain/spec tuple, so each app is answered by analyze_app —
  // either from the content-addressed AnalysisCache or computed fresh and
  // inserted; the result is byte-identical either way. Applications are
  // independent, so the phase runs through the deterministic parallel-for
  // (on the shared Executor pool): every app writes only its own slot and
  // the assembled vector is identical for any thread count. The serial
  // path stops at the first failing app in input order; the parallel path
  // reproduces that by rethrowing the lowest-index failure.
  std::shared_ptr<engine::analysis::AnalysisCache> analysis_cache;
  if (options.memoize_analysis)
    analysis_cache =
        options.analysis_cache
            ? options.analysis_cache
            : std::make_shared<engine::analysis::AnalysisCache>();
  const long evictions_before =
      analysis_cache ? analysis_cache->stats().evictions : 0;
  const int napps = static_cast<int>(specs.size());
  const int threads =
      std::min(engine::resolve_threads(options.analysis_threads), napps);
  const int row_threads =
      std::max(1, engine::resolve_threads(options.analysis_threads) / napps);
  std::vector<std::optional<AppSolution>> analyzed(specs.size());
  std::vector<std::exception_ptr> failures(specs.size());
  std::vector<double> stability_ms(specs.size(), 0.0);
  std::vector<double> dwell_ms(specs.size(), 0.0);
  std::vector<char> cache_hit(specs.size(), 0);
  const auto t_analysis = Clock::now();
  engine::parallel_for_index(threads, napps, [&](int i) {
    const AppSpec& spec = specs[static_cast<size_t>(i)];
    try {
      engine::analysis::AppAnalysisSpec aspec;
      aspec.dwell.settling_requirement = spec.settling_requirement;
      aspec.dwell.settling = options.settling;
      aspec.dwell.tw_granularity = options.tw_granularity;
      aspec.stop_on_unstable = options.require_switching_stability;
      const engine::analysis::AppAnalysisOutcome outcome =
          engine::analysis::analyze_app(spec.plant, spec.kt, spec.ke, aspec,
                                        analysis_cache.get(), row_threads,
                                        disk);
      stability_ms[static_cast<size_t>(i)] = outcome.stability_ms;
      dwell_ms[static_cast<size_t>(i)] = outcome.dwell_ms;
      cache_hit[static_cast<size_t>(i)] = outcome.cache_hit ? 1 : 0;

      AppSolution app{spec, {}, {}, outcome.result->stability};
      if (options.require_switching_stability &&
          !app.stability.switching_stable())
        throw std::invalid_argument(
            "solve: gain pair of " + spec.name +
            " is not switching stable (set require_switching_stability = "
            "false to override)");
      // Past the stability gate the analysis always carries tables
      // (stop_on_unstable mirrors require_switching_stability).
      TTDIM_CHECK(outcome.result->tables_computed);
      app.tables = outcome.result->tables;
      if (!app.tables.feasible())
        throw std::invalid_argument("solve: requirement of " + spec.name +
                                    " infeasible even with zero wait");
      app.timing = verify::make_app_timing(spec.name, app.tables,
                                           spec.min_interarrival);
      analyzed[static_cast<size_t>(i)] = std::move(app);
    } catch (...) {
      // Serial runs (the default) fail fast like the pre-oracle loop did;
      // concurrent workers record the failure and let in-flight siblings
      // drain, then the lowest-index one is rethrown below.
      if (threads <= 1) throw;
      failures[static_cast<size_t>(i)] = std::current_exception();
    }
  });
  for (const std::exception_ptr& failure : failures)
    if (failure) std::rethrow_exception(failure);
  solution.stats.analysis_ms = ms_since(t_analysis);
  solution.apps.reserve(specs.size());
  for (std::optional<AppSolution>& app : analyzed)
    solution.apps.push_back(std::move(*app));
  solution.stats.analysis_threads =
      engine::resolve_threads(options.analysis_threads);
  for (double v : stability_ms) solution.stats.stability_ms += v;
  for (double v : dwell_ms) solution.stats.dwell_ms += v;
  for (char hit : cache_hit)
    (hit ? solution.stats.analysis_hits : solution.stats.analysis_misses)++;
  if (analysis_cache)
    solution.stats.analysis_evictions =
        analysis_cache->stats().evictions - evictions_before;

  // ---- Proposed mapping: first-fit + model checking, routed through the
  // memoized admission oracle (engine/oracle). ------------------------------
  std::vector<verify::AppTiming> timings;
  timings.reserve(solution.apps.size());
  for (const AppSolution& a : solution.apps) timings.push_back(a.timing);

  const std::vector<int> order = mapping::paper_sort_order(timings);
  verify::DiscreteVerifier::Options vopt;
  vopt.max_disturbances_per_app = options.max_disturbances_per_app;
  vopt.policy = options.policy;
  vopt.proof_threads = engine::resolve_threads(options.proof_threads);
  std::shared_ptr<engine::oracle::VerdictCache> cache;
  if (options.memoize_admission)
    cache = options.verdict_cache
                ? options.verdict_cache
                : std::make_shared<engine::oracle::VerdictCache>();
  std::shared_ptr<engine::oracle::SnapshotCache> snapshots;
  if (options.incremental_admission)
    snapshots = options.snapshot_cache
                    ? options.snapshot_cache
                    : std::make_shared<engine::oracle::SnapshotCache>();
  // Both caches disabled degrades to the reference one-fresh-proof-per-
  // probe behaviour, so a single oracle covers the whole option matrix.
  const engine::oracle::IncrementalAdmissionOracle oracle(
      vopt, cache, snapshots, options.subsumption_admission,
      options.disk_cache);
  const auto t_mapping = Clock::now();
  solution.proposed = mapping::first_fit(timings, order, oracle.slot_oracle());
  solution.stats.mapping_ms = ms_since(t_mapping);
  solution.stats.oracle_calls = oracle.calls();
  solution.stats.cache_hits = oracle.exact_hits();
  solution.stats.subsumption_hits = oracle.subsumption_hits();
  solution.stats.subsumption_cuts = oracle.subsumption_cuts();
  solution.stats.cache_misses = oracle.misses();
  solution.stats.verifier_states = oracle.states_explored();
  solution.stats.prefix_hits = oracle.prefix_hits();
  solution.stats.states_reused = oracle.states_reused();
  solution.stats.states_extended = oracle.states_extended();
  solution.stats.parallel_proofs = oracle.parallel_proofs();
  solution.stats.proof_threads = vopt.proof_threads;

  // ---- Baseline mappings ([9]). -------------------------------------------
  const auto t_baseline = Clock::now();
  std::vector<sched::BaselineApp> baseline_apps;
  baseline_apps.reserve(solution.apps.size());
  for (const AppSolution& a : solution.apps)
    baseline_apps.push_back(
        sched::make_baseline_app(a.timing, a.tables.settling_tt));

  const auto baseline_oracle = [&](sched::BaselineStrategy strategy) {
    return [&baseline_apps, &timings, strategy](
               const std::vector<verify::AppTiming>& slot_apps) {
      std::vector<sched::BaselineApp> members;
      for (const verify::AppTiming& t : slot_apps) {
        const auto it = std::find_if(
            timings.begin(), timings.end(),
            [&t](const verify::AppTiming& x) { return x.name == t.name; });
        TTDIM_CHECK(it != timings.end());
        members.push_back(
            baseline_apps[static_cast<size_t>(it - timings.begin())]);
      }
      return sched::analyze_baseline_slot(members, strategy).schedulable;
    };
  };
  solution.baseline_np = mapping::first_fit(
      timings, order, baseline_oracle(sched::BaselineStrategy::kNonPreemptiveDm));
  solution.baseline_delayed = mapping::first_fit(
      timings, order, baseline_oracle(sched::BaselineStrategy::kDelayedRequests));
  solution.stats.baseline_ms = ms_since(t_baseline);

  // ---- Publish to the whole-solve result cache. ---------------------------
  if (solve_key) {
    solution.stats.solution_misses = 1;
    Solution stored = solution;
    stored.stats = {};  // stats are per-request measurement, not result
    if (disk != nullptr) {
      std::string encoded;
      support::codec::Encoder enc(encoded);
      encode_solution(enc, stored);
      disk->put(kSolutionDiskSpace, solve_key->canonical, encoded);
    }
    options.solution_cache->insert(*solve_key, std::move(stored));
  }

  stamp_disk(solution.stats);
  solution.stats.total_ms = ms_since(t_solve);
  return solution;
}

CoSimResult cosimulate(const std::vector<AppSolution>& apps,
                       const sched::Scenario& scenario, double settling_tol) {
  TTDIM_EXPECTS(!apps.empty());
  TTDIM_EXPECTS(scenario.disturbances.size() == apps.size());
  std::vector<verify::AppTiming> timings;
  timings.reserve(apps.size());
  for (const AppSolution& a : apps) timings.push_back(a.timing);

  CoSimResult out;
  out.schedule = sched::simulate_slot(timings, scenario);

  for (size_t i = 0; i < apps.size(); ++i) {
    const auto& disturbances = scenario.disturbances[i];
    if (disturbances.empty()) {
      out.traces.emplace_back();
      out.settling.emplace_back();
      continue;
    }
    // The paper's plots track the response to the (single) disturbance of
    // each application; later disturbances would just repeat the pattern.
    const int d0 = disturbances.front();
    const int len = scenario.horizon - d0;
    std::vector<bool> modes(static_cast<size_t>(len), false);
    for (int k = 0; k < len; ++k)
      modes[static_cast<size_t>(k)] =
          out.schedule.tt_mask[i][static_cast<size_t>(d0 + k)];
    const control::SwitchedLoop loop(apps[i].spec.plant, apps[i].spec.kt,
                                     apps[i].spec.ke);
    control::Trace trace = loop.simulate_schedule(modes, len);
    out.settling.push_back(control::settling_samples(trace, settling_tol));
    out.traces.push_back(std::move(trace));
  }
  return out;
}

}  // namespace ttdim::core
