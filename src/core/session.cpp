#include "core/session.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "engine/analysis/analysis_cache.h"
#include "engine/analysis/app_analysis.h"
#include "engine/cache/disk_cache.h"
#include "engine/cache/solution_cache.h"
#include "engine/oracle/incremental_oracle.h"
#include "engine/oracle/snapshot_cache.h"
#include "engine/oracle/verdict_cache.h"
#include "engine/parallel_for.h"
#include "support/check.h"

namespace ttdim::core {

namespace {

using Clock = std::chrono::steady_clock;
using engine::oracle::ms_since;
using engine::oracle::SolveStats;

constexpr const char* kSolutionDiskSpace = "solution";

/// A nullptr cache field with its enabling flag on gets a private
/// session-lifetime cache — the per-call private cache of the old
/// monolithic solve(), hoisted to construction so redimension passes
/// stay warm.
SolveOptions materialize_caches(SolveOptions options) {
  if (options.memoize_analysis && options.analysis_cache == nullptr)
    options.analysis_cache =
        std::make_shared<engine::analysis::AnalysisCache>();
  if (options.memoize_admission && options.verdict_cache == nullptr)
    options.verdict_cache = std::make_shared<engine::oracle::VerdictCache>();
  if (options.incremental_admission && options.snapshot_cache == nullptr)
    options.snapshot_cache =
        std::make_shared<engine::oracle::SnapshotCache>();
  return options;
}

/// Disk-tier accounting: SolveStats reports the delta of the shared
/// DiskCache's monotonic counters across one pass (the
/// analysis_evictions idiom) — approximate under concurrent sharing,
/// exact otherwise.
void stamp_disk(engine::cache::DiskCache* disk,
                const engine::cache::DiskCacheStats& before,
                SolveStats& stats) {
  if (disk == nullptr) return;
  const engine::cache::DiskCacheStats now = disk->stats();
  stats.disk_hits = now.hits - before.hits;
  stats.disk_misses = now.misses - before.misses;
  stats.disk_writes = now.writes - before.writes;
  stats.disk_trims = now.trims - before.trims;
}

int index_of(const Solution& solution, const std::string& name) {
  for (std::size_t i = 0; i < solution.apps.size(); ++i)
    if (solution.apps[i].spec.name == name) return static_cast<int>(i);
  return -1;
}

int slot_of(const mapping::SlotAssignment& assignment, int idx) {
  for (std::size_t s = 0; s < assignment.slots.size(); ++s)
    for (int member : assignment.slots[s])
      if (member == idx) return static_cast<int>(s);
  return -1;
}

/// Erase app `idx` from the population: drop it from its slot (dropping
/// the slot when it empties), renumber the indices above it, erase the
/// AppSolution. Proof-free: every surviving slot is a sub-population of
/// a proven-safe one, and admission is antitone.
void remove_at(Solution& solution, int idx) {
  auto& slots = solution.proposed.slots;
  for (auto it = slots.begin(); it != slots.end();) {
    std::vector<int>& slot = *it;
    slot.erase(std::remove(slot.begin(), slot.end(), idx), slot.end());
    for (int& member : slot)
      if (member > idx) --member;
    it = slot.empty() ? slots.erase(it) : it + 1;
  }
  solution.apps.erase(solution.apps.begin() + idx);
}

std::vector<verify::AppTiming> timings_of(const Solution& solution) {
  std::vector<verify::AppTiming> timings;
  timings.reserve(solution.apps.size());
  for (const AppSolution& app : solution.apps) timings.push_back(app.timing);
  return timings;
}

}  // namespace

DimensioningSession::DimensioningSession(SolveOptions options)
    : options_(materialize_caches(std::move(options))),
      proof_threads_(engine::resolve_threads(options_.proof_threads)) {
  verify::DiscreteVerifier::Options vopt;
  vopt.max_disturbances_per_app = options_.max_disturbances_per_app;
  vopt.policy = options_.policy;
  vopt.proof_threads = proof_threads_;
  // Both caches disabled degrades to the reference one-fresh-proof-per-
  // probe behaviour, so a single oracle covers the whole option matrix.
  oracle_ = std::make_unique<engine::oracle::IncrementalAdmissionOracle>(
      vopt, options_.memoize_admission ? options_.verdict_cache : nullptr,
      options_.incremental_admission ? options_.snapshot_cache : nullptr,
      options_.subsumption_admission, options_.disk_cache);
}

DimensioningSession::~DimensioningSession() = default;

DimensioningSession::OracleCounters DimensioningSession::counters() const {
  OracleCounters c;
  c.calls = oracle_->calls();
  c.exact_hits = oracle_->exact_hits();
  c.subsumption_hits = oracle_->subsumption_hits();
  c.subsumption_cuts = oracle_->subsumption_cuts();
  c.misses = oracle_->misses();
  c.states = oracle_->states_explored();
  c.prefix_hits = oracle_->prefix_hits();
  c.states_reused = oracle_->states_reused();
  c.states_extended = oracle_->states_extended();
  c.parallel_proofs = oracle_->parallel_proofs();
  return c;
}

void DimensioningSession::stamp_oracle(SolveStats& stats,
                                       const OracleCounters& before) const {
  const OracleCounters now = counters();
  stats.oracle_calls += now.calls - before.calls;
  stats.cache_hits += now.exact_hits - before.exact_hits;
  stats.subsumption_hits += now.subsumption_hits - before.subsumption_hits;
  stats.subsumption_cuts += now.subsumption_cuts - before.subsumption_cuts;
  stats.cache_misses += now.misses - before.misses;
  stats.verifier_states += now.states - before.states;
  stats.prefix_hits += now.prefix_hits - before.prefix_hits;
  stats.states_reused += now.states_reused - before.states_reused;
  stats.states_extended += now.states_extended - before.states_extended;
  stats.parallel_proofs += now.parallel_proofs - before.parallel_proofs;
  stats.proof_threads = proof_threads_;
}

// ---- Stage 1: per-application analysis (engine/analysis). ----------------
// Stability certificates and dwell tables are pure functions of the
// plant/gain/spec tuple, so each app is answered by analyze_app — either
// from the content-addressed AnalysisCache or computed fresh and
// inserted; the result is byte-identical either way. Applications are
// independent, so the phase runs through the deterministic parallel-for
// (on the shared Executor pool): every app writes only its own slot and
// the assembled vector is identical for any thread count. The serial
// path stops at the first failing app in input order; the parallel path
// reproduces that by rethrowing the lowest-index failure.
std::vector<AppSolution> DimensioningSession::stage_analysis(
    const std::vector<AppSpec>& specs, SolveStats& stats) const {
  engine::analysis::AnalysisCache* const cache =
      options_.memoize_analysis ? options_.analysis_cache.get() : nullptr;
  engine::cache::DiskCache* const disk = options_.disk_cache.get();
  const long evictions_before = cache ? cache->stats().evictions : 0;
  const int napps = static_cast<int>(specs.size());
  const int resolved = engine::resolve_threads(options_.analysis_threads);
  const int threads = std::min(resolved, napps);
  const int row_threads = std::max(1, resolved / napps);
  std::vector<std::optional<AppSolution>> analyzed(specs.size());
  std::vector<std::exception_ptr> failures(specs.size());
  std::vector<double> stability_ms(specs.size(), 0.0);
  std::vector<double> dwell_ms(specs.size(), 0.0);
  std::vector<char> cache_hit(specs.size(), 0);
  const auto t_analysis = Clock::now();
  engine::parallel_for_index(threads, napps, [&](int i) {
    const AppSpec& spec = specs[static_cast<size_t>(i)];
    try {
      engine::analysis::AppAnalysisSpec aspec;
      aspec.dwell.settling_requirement = spec.settling_requirement;
      aspec.dwell.settling = options_.settling;
      aspec.dwell.tw_granularity = options_.tw_granularity;
      aspec.stop_on_unstable = options_.require_switching_stability;
      const engine::analysis::AppAnalysisOutcome outcome =
          engine::analysis::analyze_app(spec.plant, spec.kt, spec.ke, aspec,
                                        cache, row_threads, disk);
      stability_ms[static_cast<size_t>(i)] = outcome.stability_ms;
      dwell_ms[static_cast<size_t>(i)] = outcome.dwell_ms;
      cache_hit[static_cast<size_t>(i)] = outcome.cache_hit ? 1 : 0;

      AppSolution app{spec, {}, {}, outcome.result->stability};
      if (options_.require_switching_stability &&
          !app.stability.switching_stable())
        throw std::invalid_argument(
            "solve: gain pair of " + spec.name +
            " is not switching stable (set require_switching_stability = "
            "false to override)");
      // Past the stability gate the analysis always carries tables
      // (stop_on_unstable mirrors require_switching_stability).
      TTDIM_CHECK(outcome.result->tables_computed);
      app.tables = outcome.result->tables;
      if (!app.tables.feasible())
        throw std::invalid_argument("solve: requirement of " + spec.name +
                                    " infeasible even with zero wait");
      app.timing = verify::make_app_timing(spec.name, app.tables,
                                           spec.min_interarrival);
      analyzed[static_cast<size_t>(i)] = std::move(app);
    } catch (...) {
      // Serial runs (the default) fail fast like the pre-oracle loop did;
      // concurrent workers record the failure and let in-flight siblings
      // drain, then the lowest-index one is rethrown below.
      if (threads <= 1) throw;
      failures[static_cast<size_t>(i)] = std::current_exception();
    }
  });
  for (const std::exception_ptr& failure : failures)
    if (failure) std::rethrow_exception(failure);
  stats.analysis_ms += ms_since(t_analysis);
  stats.analysis_threads = resolved;
  for (double v : stability_ms) stats.stability_ms += v;
  for (double v : dwell_ms) stats.dwell_ms += v;
  for (char hit : cache_hit) (hit ? stats.analysis_hits : stats.analysis_misses)++;
  if (cache)
    stats.analysis_evictions += cache->stats().evictions - evictions_before;
  std::vector<AppSolution> apps;
  apps.reserve(specs.size());
  for (std::optional<AppSolution>& app : analyzed)
    apps.push_back(std::move(*app));
  return apps;
}

// ---- Stage 2: proposed mapping — first-fit + model checking, routed
// through the session's memoized admission oracle (engine/oracle). --------
mapping::SlotAssignment DimensioningSession::stage_mapping(
    const std::vector<verify::AppTiming>& timings,
    const std::vector<int>& order, SolveStats& stats) const {
  const OracleCounters before = counters();
  const auto t_mapping = Clock::now();
  mapping::SlotAssignment proposed =
      mapping::first_fit(timings, order, oracle_->slot_oracle());
  stats.mapping_ms += ms_since(t_mapping);
  stamp_oracle(stats, before);
  return proposed;
}

// ---- Stage 3: baseline mappings ([9]). -----------------------------------
void DimensioningSession::stage_baselines(
    Solution& solution, const std::vector<verify::AppTiming>& timings,
    const std::vector<int>& order, SolveStats& stats) const {
  const auto t_baseline = Clock::now();
  std::vector<sched::BaselineApp> baseline_apps;
  baseline_apps.reserve(solution.apps.size());
  for (const AppSolution& a : solution.apps)
    baseline_apps.push_back(
        sched::make_baseline_app(a.timing, a.tables.settling_tt));

  const auto baseline_oracle = [&](sched::BaselineStrategy strategy) {
    return [&baseline_apps, &timings, strategy](
               const std::vector<verify::AppTiming>& slot_apps) {
      std::vector<sched::BaselineApp> members;
      for (const verify::AppTiming& t : slot_apps) {
        const auto it = std::find_if(
            timings.begin(), timings.end(),
            [&t](const verify::AppTiming& x) { return x.name == t.name; });
        TTDIM_CHECK(it != timings.end());
        members.push_back(
            baseline_apps[static_cast<size_t>(it - timings.begin())]);
      }
      return sched::analyze_baseline_slot(members, strategy).schedulable;
    };
  };
  solution.baseline_np = mapping::first_fit(
      timings, order,
      baseline_oracle(sched::BaselineStrategy::kNonPreemptiveDm));
  solution.baseline_delayed = mapping::first_fit(
      timings, order,
      baseline_oracle(sched::BaselineStrategy::kDelayedRequests));
  stats.baseline_ms += ms_since(t_baseline);
}

Solution DimensioningSession::solve(const std::vector<AppSpec>& specs) {
  TTDIM_EXPECTS(!specs.empty());
  support::MutexLock lock(mutex_);
  const auto t_solve = Clock::now();
  engine::cache::DiskCache* const disk = options_.disk_cache.get();
  engine::cache::DiskCacheStats disk_before;
  if (disk != nullptr) disk_before = disk->stats();

  // ---- Whole-solve result cache (engine/cache/solution_cache.h). ---------
  // A hit short-circuits the entire pipeline; the returned Solution is
  // the stored one with fresh per-request stats. The disk "solution"
  // space sits under the memory cache, so a fresh process answers repeat
  // requests on the first call.
  std::optional<SolveKey> solve_key;
  if (options_.solution_cache != nullptr) {
    solve_key = SolveKey::of(specs, options_);
    const auto serve_hit = [&](Solution out) {
      out.stats = {};
      out.stats.solution_hits = 1;
      out.stats.analysis_threads =
          engine::resolve_threads(options_.analysis_threads);
      stamp_disk(disk, disk_before, out.stats);
      out.stats.total_ms = ms_since(t_solve);
      return out;
    };
    if (auto cached = options_.solution_cache->lookup(*solve_key)) {
      Solution out = serve_hit(*std::move(cached));
      solution_ = out;
      return out;
    }
    if (disk != nullptr) {
      if (const auto blob =
              disk->get(kSolutionDiskSpace, solve_key->canonical)) {
        support::codec::Decoder dec(*blob);
        Solution stored;
        if (decode_solution(dec, stored) && dec.done()) {
          options_.solution_cache->insert(*solve_key, stored);
          Solution out = serve_hit(std::move(stored));
          solution_ = out;
          return out;
        }
        // Undecodable payload in a structurally valid entry (e.g. a
        // codec change without a format bump): fall through to a cold
        // solve; the entry ages out via the trim.
      }
    }
  }

  Solution solution;
  solution.apps = stage_analysis(specs, solution.stats);
  const std::vector<verify::AppTiming> timings = timings_of(solution);
  const std::vector<int> order = mapping::paper_sort_order(timings);
  solution.proposed = stage_mapping(timings, order, solution.stats);
  stage_baselines(solution, timings, order, solution.stats);

  // ---- Stage 4: assembly — publish to the whole-solve result cache. ------
  if (solve_key) {
    solution.stats.solution_misses = 1;
    Solution stored = solution;
    stored.stats = {};  // stats are per-request measurement, not result
    if (disk != nullptr) {
      std::string encoded;
      support::codec::Encoder enc(encoded);
      encode_solution(enc, stored);
      disk->put(kSolutionDiskSpace, solve_key->canonical, encoded);
    }
    options_.solution_cache->insert(*solve_key, std::move(stored));
  }

  stamp_disk(disk, disk_before, solution.stats);
  solution.stats.total_ms = ms_since(t_solve);
  solution_ = solution;
  return solution;
}

void DimensioningSession::validate_delta_locked(const Delta& delta) const {
  std::unordered_set<std::string> present;
  for (const AppSolution& app : solution_->apps) present.insert(app.spec.name);
  std::unordered_set<std::string> removed;
  for (const std::string& name : delta.remove) {
    if (present.find(name) == present.end())
      throw std::invalid_argument("redimension: cannot remove unknown app " +
                                  name);
    if (!removed.insert(name).second)
      throw std::invalid_argument("redimension: duplicate removal of " + name);
  }
  std::unordered_set<std::string> rerated;
  for (const AppSpec& spec : delta.rerate) {
    if (present.find(spec.name) == present.end())
      throw std::invalid_argument("redimension: cannot re-rate unknown app " +
                                  spec.name);
    if (removed.count(spec.name) != 0)
      throw std::invalid_argument("redimension: " + spec.name +
                                  " is both removed and re-rated");
    if (!rerated.insert(spec.name).second)
      throw std::invalid_argument("redimension: duplicate re-rate of " +
                                  spec.name);
  }
  std::unordered_set<std::string> added;
  for (const AppSpec& spec : delta.add) {
    if (present.count(spec.name) != 0 && removed.count(spec.name) == 0)
      throw std::invalid_argument("redimension: cannot add duplicate app " +
                                  spec.name);
    if (rerated.count(spec.name) != 0)
      throw std::invalid_argument("redimension: " + spec.name +
                                  " is both re-rated and added");
    if (!added.insert(spec.name).second)
      throw std::invalid_argument("redimension: duplicate addition of " +
                                  spec.name);
  }
  if (present.size() - removed.size() + added.size() == 0)
    throw std::invalid_argument(
        "redimension: delta would empty the population");
}

void DimensioningSession::place_app(Solution& solution, int idx,
                                    SolveStats& stats) const {
  const std::vector<verify::AppTiming> timings = timings_of(solution);
  const int slot = mapping::first_fit_placement(timings, solution.proposed,
                                                idx, oracle_->slot_oracle());
  if (slot >= 0) {
    solution.proposed.slots[static_cast<size_t>(slot)].push_back(idx);
    ++stats.redimension_refits;
  } else {
    // A new dedicated slot must always admit a single application
    // (mirrors the first-fit walk's invariant).
    TTDIM_CHECK(oracle_->admit({timings[static_cast<size_t>(idx)]}));
    solution.proposed.slots.push_back({idx});
    ++stats.redimension_new_slots;
  }
}

Solution DimensioningSession::redimension(const Delta& delta) {
  support::MutexLock lock(mutex_);
  if (!solution_.has_value())
    throw std::logic_error(
        "DimensioningSession::redimension: no standing solution (run "
        "solve() first)");
  const auto t_redim = Clock::now();
  engine::cache::DiskCache* const disk = options_.disk_cache.get();
  engine::cache::DiskCacheStats disk_before;
  if (disk != nullptr) disk_before = disk->stats();

  SolveStats stats;
  stats.analysis_threads = engine::resolve_threads(options_.analysis_threads);
  stats.proof_threads = proof_threads_;

  // Empty delta is the identity: the standing solution, byte-identical,
  // with fresh per-request stats.
  if (delta.empty()) {
    Solution out = *solution_;
    out.stats = stats;
    stamp_disk(disk, disk_before, out.stats);
    out.stats.total_ms = ms_since(t_redim);
    return out;
  }

  validate_delta_locked(delta);

  // Analysis for re-rates and additions runs up front (one stage pass,
  // same parallel fan-out and caches as a fresh solve), so an unmeetable
  // requirement throws before the standing solution is touched.
  std::vector<AppSpec> fresh_specs;
  fresh_specs.reserve(delta.rerate.size() + delta.add.size());
  for (const AppSpec& spec : delta.rerate) fresh_specs.push_back(spec);
  for (const AppSpec& spec : delta.add) fresh_specs.push_back(spec);
  std::vector<AppSolution> fresh;
  if (!fresh_specs.empty()) fresh = stage_analysis(fresh_specs, stats);

  Solution next = *solution_;
  next.stats = {};
  const OracleCounters oracle_before = counters();
  const auto t_mapping = Clock::now();

  // Removals first: proof-free by antitone admission, and they free the
  // capacity re-rates/additions may first-fit into.
  for (const std::string& name : delta.remove) {
    remove_at(next, index_of(next, name));
    ++stats.redimension_removals;
  }

  // Re-rates: probe the app's current slot with the re-analyzed timing
  // substituted in place (members stay in insertion order, so the probe
  // is warm-cache-friendly). Only a true conflict re-places the app.
  std::size_t k = 0;
  for (std::size_t i = 0; i < delta.rerate.size(); ++i, ++k) {
    AppSolution& app = fresh[k];
    const int idx = index_of(next, app.spec.name);
    const int slot = slot_of(next.proposed, idx);
    TTDIM_CHECK(idx >= 0 && slot >= 0);
    std::vector<verify::AppTiming> probe;
    const std::vector<int>& members =
        next.proposed.slots[static_cast<size_t>(slot)];
    probe.reserve(members.size());
    for (int member : members)
      probe.push_back(member == idx ? app.timing
                                    : next.apps[static_cast<size_t>(member)]
                                          .timing);
    if (oracle_->admit(probe)) {
      next.apps[static_cast<size_t>(idx)] = std::move(app);
      ++stats.redimension_refits;
    } else {
      ++stats.redimension_conflicts;
      std::vector<int>& current =
          next.proposed.slots[static_cast<size_t>(slot)];
      current.erase(std::remove(current.begin(), current.end(), idx),
                    current.end());
      if (current.empty())
        next.proposed.slots.erase(next.proposed.slots.begin() + slot);
      next.apps[static_cast<size_t>(idx)] = std::move(app);
      place_app(next, idx, stats);
    }
  }

  // Additions: first-fit into the existing slots through the warm
  // oracle; a fresh dedicated slot only when none admits. Arrival order,
  // not the paper sort — the standing assignment is history-dependent by
  // design.
  for (std::size_t i = 0; i < delta.add.size(); ++i, ++k) {
    next.apps.push_back(std::move(fresh[k]));
    place_app(next, static_cast<int>(next.apps.size()) - 1, stats);
  }
  stats.mapping_ms += ms_since(t_mapping);
  stamp_oracle(stats, oracle_before);

  // Baselines are closed-form and cheap: recompute them from scratch so
  // the saving-vs-baseline comparison stays meaningful after churn.
  const std::vector<verify::AppTiming> timings = timings_of(next);
  const std::vector<int> order = mapping::paper_sort_order(timings);
  stage_baselines(next, timings, order, stats);

  stats.redimension_events = static_cast<long>(delta.size());
  stamp_disk(disk, disk_before, stats);
  stats.total_ms = ms_since(t_redim);
  next.stats = stats;
  solution_ = next;
  return next;
}

bool DimensioningSession::has_solution() const {
  support::MutexLock lock(mutex_);
  return solution_.has_value();
}

Solution DimensioningSession::solution() const {
  support::MutexLock lock(mutex_);
  if (!solution_.has_value())
    throw std::logic_error(
        "DimensioningSession::solution: no standing solution");
  return *solution_;
}

std::vector<AppSpec> DimensioningSession::specs() const {
  support::MutexLock lock(mutex_);
  if (!solution_.has_value())
    throw std::logic_error("DimensioningSession::specs: no standing solution");
  std::vector<AppSpec> out;
  out.reserve(solution_->apps.size());
  for (const AppSolution& app : solution_->apps) out.push_back(app.spec);
  return out;
}

}  // namespace ttdim::core
