// Staged dimensioning pipeline with a standing solution: the session
// owns the caches, the admission oracle and the current Solution, so the
// heavy serving workload — *re*-dimensioning a live system as apps
// arrive, leave and get re-rated — reuses everything a cold solve had to
// build.
//
// A full pass runs the four explicit stages of core::solve
//
//   analysis  -> admission mapping -> baselines -> assembly
//
// and core::solve() itself is now a thin façade over one throwaway
// session pass (byte-identical to the pre-session monolith, pinned by
// the golden/fingerprint tests). On top of the standing solution,
// redimension(Delta) applies app additions / removals / re-rates
// incrementally:
//
//   removals   rewrite the assignment in place — proof-free: admission
//              is antitone in the slot population, so every remaining
//              slot (a sub-population of a proven-safe one) stays safe;
//   re-rates   probe the app's current slot with the re-analyzed timing
//              substituted in place (one oracle call, usually warm);
//              only a true conflict falls back to first-fit over the
//              other slots, then a fresh dedicated slot;
//   additions  first-fit into the existing slots through the warm
//              oracle; a new slot only when no existing slot admits.
//
// Every probe is posed as "slot members in insertion order + candidate
// appended" (mapping::first_fit_placement), so re-dimensioning hits the
// same verdict/snapshot entries the original solve populated. The
// returned solution therefore passes exactly the admission proofs a
// fresh solve would run — cross-checked by tests/redimension_test.cpp
// and the fuzzer's churn differential.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dimensioning.h"
#include "support/thread_annotations.h"

namespace ttdim::engine::oracle {
class IncrementalAdmissionOracle;
}  // namespace ttdim::engine::oracle

namespace ttdim::core {

/// One batch of population changes, applied atomically in the order
/// removals -> re-rates -> additions (so "remove X; add X" re-specs X
/// from scratch and a re-rate never races its own removal). Names are
/// the app identity: removals and re-rates must name standing apps,
/// additions must not collide with the post-removal population.
struct Delta {
  std::vector<std::string> remove;
  /// Replacement specs for standing apps (same name, new rate/plant/
  /// gains). The app is re-analyzed and kept in its slot when the slot
  /// still admits the new timing; only a conflict re-places it.
  std::vector<AppSpec> rerate;
  std::vector<AppSpec> add;

  [[nodiscard]] bool empty() const noexcept {
    return remove.empty() && rerate.empty() && add.empty();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return remove.size() + rerate.size() + add.size();
  }
};

/// Long-lived dimensioning pipeline. Construction materializes every
/// cache the options enable (a nullptr cache field + its memoize flag
/// gets a private session-lifetime cache, where solve() used to build a
/// private per-call one) and the admission oracle; solve() runs one full
/// staged pass and installs the result as the standing solution;
/// redimension() edits the standing solution under the same proofs.
///
/// Thread-safe: the standing state is GUARDED_BY an annotated
/// support::Mutex (machine-checked by the clang thread-safety lane),
/// public methods serialize, and the caches/oracle are internally
/// synchronized — concurrent sessions may share them freely.
class DimensioningSession {
 public:
  explicit DimensioningSession(SolveOptions options = {});
  ~DimensioningSession();

  DimensioningSession(const DimensioningSession&) = delete;
  DimensioningSession& operator=(const DimensioningSession&) = delete;

  /// One full staged pass (analysis -> admission mapping -> baselines ->
  /// assembly); the result becomes the standing solution. Byte-identical
  /// to the pre-session core::solve for the same options (which is now
  /// exactly one pass of a throwaway session). Throws
  /// std::invalid_argument like solve() on unmeetable requirements; the
  /// standing solution is untouched on throw.
  [[nodiscard]] Solution solve(const std::vector<AppSpec>& specs);

  /// Apply `delta` to the standing solution (solve() must have
  /// succeeded first). Removals are proof-free; re-rates and additions
  /// are admitted through the warm oracle; baselines are recomputed.
  /// The updated solution becomes the standing solution and is returned.
  /// An empty delta is the identity (byte-identical standing solution,
  /// fresh stats). Throws std::invalid_argument on unknown/duplicate
  /// names, on a delta that empties the population, or on an unmeetable
  /// re-rate/addition requirement — the standing solution is untouched
  /// on throw. The result is deliberately NOT published to the
  /// whole-solve SolutionCache: a re-dimensioned assignment is
  /// history-dependent, generally not what a fresh solve of the same
  /// population would produce.
  [[nodiscard]] Solution redimension(const Delta& delta);

  [[nodiscard]] bool has_solution() const;
  /// Copy of the standing solution; throws std::logic_error when no
  /// solve() has succeeded yet.
  [[nodiscard]] Solution solution() const;
  /// Specs of the standing population, in assignment index order.
  [[nodiscard]] std::vector<AppSpec> specs() const;
  [[nodiscard]] const SolveOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Monotonic per-instance oracle counters, snapshotted before a stage
  /// so each pass reports its own delta (the analysis_evictions idiom).
  struct OracleCounters {
    long calls = 0, exact_hits = 0, subsumption_hits = 0,
         subsumption_cuts = 0, misses = 0, states = 0, prefix_hits = 0,
         states_reused = 0, states_extended = 0, parallel_proofs = 0;
  };
  [[nodiscard]] OracleCounters counters() const;
  void stamp_oracle(engine::oracle::SolveStats& stats,
                    const OracleCounters& before) const;

  // ---- Pipeline stages. Stage functions accumulate into `stats` so a
  // redimension pass can run a stage more than once. ----------------------
  [[nodiscard]] std::vector<AppSolution> stage_analysis(
      const std::vector<AppSpec>& specs,
      engine::oracle::SolveStats& stats) const;
  [[nodiscard]] mapping::SlotAssignment stage_mapping(
      const std::vector<verify::AppTiming>& timings,
      const std::vector<int>& order, engine::oracle::SolveStats& stats) const;
  void stage_baselines(Solution& solution,
                       const std::vector<verify::AppTiming>& timings,
                       const std::vector<int>& order,
                       engine::oracle::SolveStats& stats) const;

  void validate_delta_locked(const Delta& delta) const REQUIRES(mutex_);
  /// First-fit `idx` into the existing slots (new dedicated slot when
  /// none admits), bumping the redimension refit/new-slot counters.
  void place_app(Solution& solution, int idx,
                 engine::oracle::SolveStats& stats) const;

  const SolveOptions options_;  ///< caches materialized, immutable
  const int proof_threads_;     ///< resolved once, mirrored into stats
  std::unique_ptr<engine::oracle::IncrementalAdmissionOracle> oracle_;

  mutable support::Mutex mutex_;
  std::optional<Solution> solution_ GUARDED_BY(mutex_);
};

}  // namespace ttdim::core
