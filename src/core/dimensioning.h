// Top-level façade: from plant models + requirements to a verified TT slot
// dimensioning. This is the end-to-end pipeline of the paper:
//   1. dwell-time analysis per application (Sec. 3),
//   2. switching-stability check of the gain pair (Sec. 3),
//   3. first-fit mapping with model-checking admission (Secs. 4-5),
//   4. baseline mapping with the [9] schedulability analysis for the
//      comparison of Sec. 5.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "control/design.h"
#include "control/sim.h"
#include "engine/oracle/solve_stats.h"
#include "mapping/first_fit.h"
#include "sched/baseline.h"
#include "sched/slot_scheduler.h"
#include "switching/dwell.h"
#include "verify/discrete.h"

namespace ttdim::engine::oracle {
class VerdictCache;
class SnapshotCache;
}  // namespace ttdim::engine::oracle

namespace ttdim::engine::analysis {
class AnalysisCache;
}  // namespace ttdim::engine::analysis

namespace ttdim::engine::cache {
class DiskCache;
class SolutionCache;
}  // namespace ttdim::engine::cache

namespace ttdim::core {

/// One application as specified by the system designer.
struct AppSpec {
  std::string name;
  control::DiscreteLti plant;
  control::Matrix kt;  ///< fast gain, 1 x n
  control::Matrix ke;  ///< slow gain on [x; u_prev], 1 x (n+1)
  int min_interarrival = 0;      ///< r, samples
  int settling_requirement = 0;  ///< J*, samples
};

struct SolveOptions {
  control::SettlingSpec settling{0.02, 3000};
  int tw_granularity = 1;
  /// Disturbance-instance bound handed to the verifier; < 0 = unbounded.
  int max_disturbances_per_app = -1;
  /// Reject gain pairs without a common quadratic Lyapunov certificate
  /// (paper Sec. 3 recommends switching-stable designs; disable to
  /// experiment with unstable pairs as in Fig. 3).
  bool require_switching_stability = true;
  /// Arbitration policy the admission checks verify (and the deployed
  /// runtime must then use): the paper's strategy or the slack-aware
  /// extension (verify/policy.h).
  verify::SlotPolicy policy = verify::SlotPolicy::kPaper;
  /// Enable the exact-verdict tier of the admission oracle
  /// (engine/oracle): first-fit probes answered from a VerdictCache of
  /// canonical slot configurations. The dimensioning result is
  /// byte-identical either way. Note this controls only that tier —
  /// reverting to the reference one-fresh-DiscreteVerifier-run-per-probe
  /// path (what caching is tested against) requires also disabling
  /// incremental_admission below.
  bool memoize_admission = true;
  /// Verdict cache shared across solves (batch jobs, a serve process).
  /// nullptr + memoize_admission gives the solve a private cache.
  std::shared_ptr<engine::oracle::VerdictCache> verdict_cache;
  /// Prefix-reuse tier of the admission oracle (engine/oracle): when a
  /// first-fit probe {slot + candidate} misses the verdict cache, the
  /// verifier extends the cached reachable-set snapshot of the {slot}
  /// prefix instead of re-proving it from scratch. The dimensioning
  /// result is byte-identical either way (the incremental search visits
  /// exactly the same reachable set); disabling reverts admission to the
  /// PR-2 two-tier oracle.
  bool incremental_admission = true;
  /// Snapshot cache shared across solves, like verdict_cache. nullptr +
  /// incremental_admission gives the solve a private cache.
  std::shared_ptr<engine::oracle::SnapshotCache> snapshot_cache;
  /// Cross-config subsumption tier of the admission oracle
  /// (engine/oracle/subsumption_index.h): admission is antitone in the
  /// slot population, so a probe never posed exactly can be answered by
  /// multiset inclusion against populations the verdict store has
  /// proved — sub-populations of safe ones are safe, super-populations
  /// of unsafe ones are unsafe, always under byte-identical verifier
  /// options. The dimensioning result is byte-identical either way; the
  /// tier pays off when the verdict cache is shared across solves of
  /// overlapping-but-not-equal populations (batch sweeps that add or
  /// drop applications). Requires memoize_admission (the index hangs off
  /// the verdict store); ignored without it.
  bool subsumption_admission = true;
  /// Memoize the per-application analysis phase (engine/analysis): the
  /// stability certificate and dwell tables of each plant/gain/spec
  /// tuple are answered from a content-addressed AnalysisCache instead
  /// of recomputed. The dimensioning result is byte-identical either
  /// way — the analysis is a pure function of the key.
  bool memoize_analysis = true;
  /// Analysis cache shared across solves (batch jobs, a serve process):
  /// scenarios that perturb arrival patterns but reuse the same plants
  /// then pay the ~stability+dwell cost once instead of per job.
  /// nullptr + memoize_analysis gives the solve a private cache.
  std::shared_ptr<engine::analysis::AnalysisCache> analysis_cache;
  /// Thread budget of the per-application analysis phase (stability +
  /// dwell tables) and of the dwell-row search: 1 = serial (default),
  /// 0 = hardware concurrency. Results are independent of this value.
  int analysis_threads = 1;
  /// Thread budget of each discrete admission proof
  /// (verify::DiscreteVerifier::Options::proof_threads): 1 = serial
  /// (default), 0 = hardware concurrency. > 1 routes fresh full proofs
  /// to the Executor-parallel BFS driver; prefix-seeded extensions and
  /// witness/depth-first diagnostics stay serial (their discovery order
  /// is part of their contract). Results are independent of this value
  /// — like analysis_threads it is excluded from SolveKey, so warm and
  /// cold thread configurations share solve-result cache entries.
  int proof_threads = 1;
  /// Persistent second tier under the memory caches
  /// (engine/cache/disk_cache.h): analysis results, admission verdicts
  /// and whole-solve results survive the process, so a restarted daemon
  /// or a CI run restoring the directory starts warm. nullptr (default)
  /// disables the tier; the dimensioning result is byte-identical either
  /// way. The analysis/verdict spaces are consulted only when the
  /// corresponding memoize_* gate above is on.
  std::shared_ptr<engine::cache::DiskCache> disk_cache;
  /// Whole-solve result cache keyed by SolveKey (the full canonical
  /// input): a hit returns the complete Solution without running any
  /// pipeline phase. Layered over disk_cache's "solution" space when
  /// both are set. nullptr (default) disables the tier.
  std::shared_ptr<engine::cache::SolutionCache> solution_cache;

  SolveOptions() {}
};

/// Per-application artefacts of the analysis.
struct AppSolution {
  AppSpec spec;
  switching::DwellTables tables;
  verify::AppTiming timing;
  control::SwitchingStability stability;
};

/// Complete dimensioning result.
struct Solution {
  std::vector<AppSolution> apps;
  mapping::SlotAssignment proposed;          ///< model-checking admission
  mapping::SlotAssignment baseline_np;       ///< [9] strategy 1
  mapping::SlotAssignment baseline_delayed;  ///< [9] strategy 2
  /// Per-solve instrumentation (phase wall times, oracle/cache counters).
  /// Measurement only: excluded from engine::fingerprint.
  engine::oracle::SolveStats stats;

  /// Slot-count saving of the proposed strategy vs. the better baseline.
  [[nodiscard]] double saving_vs_baseline() const;
};

/// Content-addressed identity of a whole solve: the canonical
/// serialization of every AppSpec (in input order — the pipeline is
/// order-sensitive) plus the result-affecting SolveOptions fields
/// (settling, granularity, disturbance bound, stability requirement,
/// policy). Cache/thread toggles are excluded: they never change the
/// result (pinned by the fingerprint-equality tests), so warm and cold
/// configurations share solve-result cache entries. This is the
/// AppAnalysisKey idiom extended to complete specs — the key of the
/// whole-solve SolutionCache and of the disk tier's "solution" space.
struct SolveKey {
  std::string canonical;
  std::uint64_t hash = 0;

  [[nodiscard]] static SolveKey of(const std::vector<AppSpec>& specs,
                                   const SolveOptions& options);

  [[nodiscard]] friend bool operator==(const SolveKey& a, const SolveKey& b) {
    return a.canonical == b.canonical;
  }
  [[nodiscard]] friend bool operator!=(const SolveKey& a, const SolveKey& b) {
    return !(a == b);
  }
};

struct SolveKeyHash {
  [[nodiscard]] std::size_t operator()(const SolveKey& key) const noexcept {
    return static_cast<std::size_t>(key.hash);
  }
};

/// Round-trip binary codec for disk-cached solutions: apps (specs, dwell
/// tables, timings, stability verdicts) and all three assignments.
/// SolveStats is measurement, not result — it is excluded from the
/// encoding (like engine::fingerprint), and a decoded Solution carries
/// default stats for the caller to fill. decode_solution returns false
/// on malformed input and never throws.
void encode_solution(support::codec::Encoder& enc, const Solution& solution);
[[nodiscard]] bool decode_solution(support::codec::Decoder& dec,
                                   Solution& solution);

/// Run the full pipeline. Throws std::invalid_argument when a requirement
/// is unmeetable or (if required) a gain pair lacks switching stability.
/// One pass of a throwaway DimensioningSession (core/session.h) under
/// the hood — long-lived callers that re-dimension under churn hold a
/// session instead and call its solve()/redimension().
[[nodiscard]] Solution solve(const std::vector<AppSpec>& specs,
                             const SolveOptions& options = {});

/// Co-simulation: drive every application's switched loop with the slot
/// occupancy produced by the runtime scheduler for a concrete disturbance
/// scenario. Traces are per-application and start at that application's
/// disturbance tick (matching the paper's Figs. 8-9 plots). Applications
/// without a disturbance in the scenario get an empty trace.
struct CoSimResult {
  sched::ScheduleResult schedule;
  std::vector<control::Trace> traces;
  std::vector<std::optional<int>> settling;  ///< samples, per app
};
[[nodiscard]] CoSimResult cosimulate(const std::vector<AppSolution>& apps,
                                     const sched::Scenario& scenario,
                                     double settling_tol);

}  // namespace ttdim::core
