# Configure-time proof that the thread-safety contract layer is alive.
#
# Three try_compile probes over tests/compile_fail/:
#   * guarded_access_ok.cpp      must COMPILE — a correctly locked
#     GUARDED_BY access is accepted (and under g++, where the macros are
#     no-ops, this doubles as the zero-cost-compat check).
#   * unguarded_access_fails.cpp must NOT COMPILE under clang with
#     -Wthread-safety -Werror — the analysis really rejects an unguarded
#     access. Without this negative test, a typo'd macro gate (annotations
#     silently expanding to nothing under clang) would let every contract
#     in src/engine/ rot while the lane stays green.
#   * striped_unguarded_fails.cpp must NOT COMPILE under clang either:
#     the REQUIRES-annotated batched-flush helpers of the parallel
#     verifier's StripedVisitedSet (src/verify/visited_set.h) called
#     lock-free — proving the contracts the parallel BFS dedup rests on
#     are themselves alive, not just the generic annotation layer.
include_guard(GLOBAL)

function(ttdim_thread_safety_checks)
  set(src_include "${CMAKE_CURRENT_SOURCE_DIR}/src")
  set(check_dir "${CMAKE_CURRENT_SOURCE_DIR}/tests/compile_fail")
  set(is_clang FALSE)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    set(is_clang TRUE)
    set(tsa_flags "-Wthread-safety;-Wthread-safety-beta;-Werror")
  else()
    set(tsa_flags "")
  endif()

  try_compile(ttdim_tsa_positive
    "${CMAKE_BINARY_DIR}/ttdim_tsa_check/positive"
    "${check_dir}/guarded_access_ok.cpp"
    COMPILE_DEFINITIONS "${tsa_flags}"
    CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${src_include}"
    CXX_STANDARD 17
    CXX_STANDARD_REQUIRED ON
    OUTPUT_VARIABLE ttdim_tsa_positive_log)
  if(NOT ttdim_tsa_positive)
    message(FATAL_ERROR
      "thread-safety check: the correctly locked probe "
      "(tests/compile_fail/guarded_access_ok.cpp) failed to compile — the "
      "annotation layer itself is broken:\n${ttdim_tsa_positive_log}")
  endif()

  if(is_clang)
    try_compile(ttdim_tsa_negative
      "${CMAKE_BINARY_DIR}/ttdim_tsa_check/negative"
      "${check_dir}/unguarded_access_fails.cpp"
      COMPILE_DEFINITIONS "${tsa_flags}"
      CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${src_include}"
      CXX_STANDARD 17
      CXX_STANDARD_REQUIRED ON
      OUTPUT_VARIABLE ttdim_tsa_negative_log)
    if(ttdim_tsa_negative)
      message(FATAL_ERROR
        "thread-safety check: the unguarded-access probe "
        "(tests/compile_fail/unguarded_access_fails.cpp) COMPILED under "
        "-Wthread-safety -Werror — the analysis is not rejecting contract "
        "violations, so every GUARDED_BY/REQUIRES in src/ is unenforced.")
    endif()
    try_compile(ttdim_tsa_striped
      "${CMAKE_BINARY_DIR}/ttdim_tsa_check/striped"
      "${check_dir}/striped_unguarded_fails.cpp"
      COMPILE_DEFINITIONS "${tsa_flags}"
      CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${src_include}"
      CXX_STANDARD 17
      CXX_STANDARD_REQUIRED ON
      OUTPUT_VARIABLE ttdim_tsa_striped_log)
    if(ttdim_tsa_striped)
      message(FATAL_ERROR
        "thread-safety check: the unguarded striped-visited-set probe "
        "(tests/compile_fail/striped_unguarded_fails.cpp) COMPILED under "
        "-Wthread-safety -Werror — the REQUIRES contracts on "
        "verify::detail::StripedVisitedSet are unenforced, so the "
        "parallel BFS driver's dedup locking is unproven.")
    endif()
    message(STATUS
      "Thread-safety analysis live: unguarded access rejected (generic "
      "and striped visited set), guarded access accepted")
  else()
    message(STATUS
      "Thread-safety annotations are no-ops for ${CMAKE_CXX_COMPILER_ID}; "
      "guarded probe compiled clean (clang lane enforces the contracts)")
  endif()
endfunction()

ttdim_thread_safety_checks()
