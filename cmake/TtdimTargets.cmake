# Target helpers: one call per test / bench / example keeps the root
# CMakeLists declarative and guarantees every binary gets the same warning
# set and links the ttdim library.

include_guard(GLOBAL)
include(GoogleTest)

function(ttdim_add_test source)
  get_filename_component(name "${source}" NAME_WE)
  add_executable(${name} "${source}")
  target_link_libraries(${name} PRIVATE ttdim GTest::gtest_main)
  # gtest_discover_tests would register each TEST() separately but runs the
  # binary at build time; add_test keeps configure cheap and gives exactly
  # one CTest entry per suite file, which is what the verify gate counts.
  add_test(NAME ${name} COMMAND ${name})
  # Every gtest suite belongs to the fast always-on gate: `ctest -L tier1`
  # is what PR CI runs; only the deeper fuzz campaigns carry `long`.
  set_tests_properties(${name} PROPERTIES TIMEOUT 600 LABELS "tier1")
endfunction()

function(ttdim_add_bench source)
  get_filename_component(name "${source}" NAME_WE)
  add_executable(${name} "${source}")
  target_link_libraries(${name} PRIVATE ttdim benchmark::benchmark)
endfunction()

function(ttdim_add_example source)
  get_filename_component(name "${source}" NAME_WE)
  add_executable(example_${name} "${source}")
  target_link_libraries(example_${name} PRIVATE ttdim)
  set_target_properties(example_${name} PROPERTIES OUTPUT_NAME ${name})
endfunction()
