# Third-party dependency resolution for ttdim.
#
# GoogleTest: prefer the system package; fall back to FetchContent so the
# build still works on machines without libgtest-dev. The fallback is only
# attempted when tests are enabled.
#
# google-benchmark: optional. When absent the bench/ binaries are skipped
# (they are measurement tools, not part of the verify gate).

include_guard(GLOBAL)

function(ttdim_resolve_gtest)
  if(NOT TTDIM_FORCE_FETCH_GTEST)
    find_package(GTest QUIET)
    if(GTest_FOUND)
      message(STATUS "ttdim: using system GoogleTest")
      return()
    endif()
    message(STATUS "ttdim: system GoogleTest not found, fetching v1.14.0")
  else()
    message(STATUS "ttdim: TTDIM_FORCE_FETCH_GTEST set, fetching v1.14.0")
  endif()
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  # Match the parent project's runtime on MSVC; harmless elsewhere.
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endfunction()

function(ttdim_resolve_benchmark out_found)
  find_package(benchmark QUIET)
  if(benchmark_FOUND)
    message(STATUS "ttdim: using system google-benchmark")
    set(${out_found} TRUE PARENT_SCOPE)
  else()
    message(STATUS "ttdim: google-benchmark not found; bench/ targets skipped")
    set(${out_found} FALSE PARENT_SCOPE)
  endif()
endfunction()
