#!/usr/bin/env python3
"""Gate on benchmark regressions of the case-study solve.

Compares a fresh google-benchmark JSON report of bench_oracle against the
checked-in bench/BENCH_baseline.json. Absolute times are meaningless
across machines, so every solve time is first normalized by the run's own
BM_Calibration time (a fixed CPU-bound loop): the compared quantity is
"solves per calibration unit", which cancels the machine's scalar speed.

Usage:
  check_bench_regression.py <current.json> [--baseline bench/BENCH_baseline.json]
                            [--threshold 0.25]

Exit code 1 when any gated benchmark is more than `threshold` slower
(calibrated) than the baseline. Speedups update nothing — refresh the
baseline deliberately by re-running bench_oracle with
--benchmark_format=json and committing the result.
"""

import argparse
import json
import sys

GATED = [
    "BM_CaseStudySolve",
    "BM_CaseStudySolveUncached",
    "BM_CaseStudySolveWarmCache",
    "BM_CaseStudySolvePrefixWarm",
]
CALIBRATION = "BM_Calibration"


def load_times(path):
    with open(path) as fh:
        report = json.load(fh)
    times = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "")
        if name not in times and "real_time" in bench:
            times[name] = float(bench["real_time"])
    return times


def time_of(times, name):
    """Prefer the _median aggregate (present with --benchmark_repetitions)
    over the single-run entry."""
    return times.get(name + "_median", times.get(name))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current", help="fresh bench_oracle JSON report")
    parser.add_argument("--baseline", default="bench/BENCH_baseline.json")
    parser.add_argument("--threshold", type=float, default=0.25)
    args = parser.parse_args()

    current = load_times(args.current)
    baseline = load_times(args.baseline)

    for required in GATED + [CALIBRATION]:
        for label, times in (("current", current), ("baseline", baseline)):
            if time_of(times, required) is None:
                print(f"FAIL: {required} missing from {label} report")
                return 1

    failed = False
    for name in GATED:
        # Calibrated ratio: how many calibration units one solve costs.
        cur = time_of(current, name) / time_of(current, CALIBRATION)
        base = time_of(baseline, name) / time_of(baseline, CALIBRATION)
        change = cur / base - 1.0
        verdict = "ok"
        if change > args.threshold:
            verdict = f"REGRESSION (> {args.threshold:.0%})"
            failed = True
        print(
            f"{name}: baseline {base:.2f} -> current {cur:.2f} "
            f"calibration units ({change:+.1%}) {verdict}"
        )

    if failed:
        print(
            "\nCase-study solve regressed beyond the threshold. If the "
            "slowdown is intended, refresh bench/BENCH_baseline.json."
        )
        return 1
    print("\nAll gated benchmarks within threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
