#!/usr/bin/env python3
"""Gate on benchmark regressions of the case-study solve.

Compares fresh google-benchmark JSON reports (bench_oracle; bench_batch
for BM_CaseStudySolveAnalysisWarm, BM_CaseStudySolveSubsumptionWarm and
BM_CaseStudySolveDiskWarm; bench_verification for the BM_DiscreteLarge
serial/parallel verifier pair; bench_redimension for the
BM_RedimensionWarmChurn / BM_RedimensionColdPerEvent warm-vs-cold churn
pair) against
the checked-in bench/BENCH_baseline.json. Any gated benchmark that cannot be compared —
missing from the current reports or the baseline, or normalized by an
absent/zero calibration — fails the gate loudly; nothing is skipped. Absolute times are
meaningless across machines, so every solve time is first normalized by
the BM_Calibration time (a fixed CPU-bound loop, registered by every
bench binary via bench_common.h) *from the same report*: the compared
quantity is "solves per calibration unit", which cancels the machine's
scalar speed. Normalizing one binary's solve by another binary's
calibration would reintroduce cross-process noise (thermal throttling or
a noisy neighbor during one run but not the other), so each report must
carry its own calibration, and the baseline file keeps the per-binary
runs as separate groups ({"groups": [<report>, ...]}; a plain report is
treated as one group).

Usage:
  check_bench_regression.py <current.json> [<more.json> ...]
                            [--baseline bench/BENCH_baseline.json]
                            [--threshold 0.25]

Exit code 1 when any gated benchmark is more than `threshold` slower
(calibrated) than the baseline. Speedups update nothing — refresh the
baseline deliberately by re-running bench_oracle and bench_batch with
--benchmark_format=json and committing the merged groups.
"""

import argparse
import json
import sys

GATED = [
    "BM_CaseStudySolve",
    "BM_CaseStudySolveUncached",
    "BM_CaseStudySolveWarmCache",
    "BM_CaseStudySolvePrefixWarm",
    "BM_CaseStudySolveAnalysisWarm",
    "BM_CaseStudySolveSubsumptionWarm",
    "BM_CaseStudySolveDiskWarm",
    # The discrete verifier's heap-fallback hot loop (bench_verification):
    # serial, and the Executor-parallel driver at 8 threads. Gated as two
    # absolute (calibrated) times, not a speedup ratio — on a single-core
    # runner the parallel time legitimately equals the serial one.
    "BM_DiscreteLarge/1",
    "BM_DiscreteLarge/8",
    # Online re-dimensioning (bench_redimension): the steady-state warm
    # remove+re-add cycle through a standing DimensioningSession, and the
    # from-scratch solve pair a redimension-less daemon would pay for the
    # same two events. Gating both pins the >= 10x warm/cold margin of
    # ISSUE 10 from either side: the warm path regressing toward the cold
    # one or the cold baseline quietly speeding past the ratio both trip.
    "BM_RedimensionWarmChurn",
    "BM_RedimensionColdPerEvent",
]
CALIBRATION = "BM_Calibration"


def times_of(benchmarks):
    times = {}
    for bench in benchmarks:
        name = bench.get("name", "")
        if name not in times and "real_time" in bench:
            times[name] = float(bench["real_time"])
    return times


def load_groups(path):
    """One times-dict per self-normalizing report group in the file."""
    with open(path) as fh:
        report = json.load(fh)
    if "groups" in report:
        return [times_of(g.get("benchmarks", [])) for g in report["groups"]]
    return [times_of(report.get("benchmarks", []))]


def time_of(times, name):
    """Prefer the _median aggregate (present with --benchmark_repetitions)
    over the single-run entry."""
    return times.get(name + "_median", times.get(name))


def calibrated(groups, name, label):
    """Calibration units of `name`, normalized within the first group
    that contains it. None (with a FAIL message) when the benchmark is
    absent everywhere, when the containing group lacks its own
    calibration, or when that calibration is zero/negative — every one
    of these must fail the gate loudly: a silently skipped benchmark
    reads as "within threshold" while measuring nothing."""
    for times in groups:
        raw = time_of(times, name)
        if raw is None:
            continue
        calibration = time_of(times, CALIBRATION)
        if calibration is None:
            print(f"FAIL: the {label} report containing {name} has no "
                  f"{CALIBRATION} of its own")
            return None
        if calibration <= 0:
            print(f"FAIL: the {label} report containing {name} has a "
                  f"non-positive {CALIBRATION} time ({calibration!r}) — "
                  f"cannot normalize")
            return None
        return raw / calibration
    print(f"FAIL: {name} missing from the {label} report(s)")
    return None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "current", nargs="+",
        help="fresh benchmark JSON report(s), each self-normalizing")
    parser.add_argument("--baseline", default="bench/BENCH_baseline.json")
    parser.add_argument("--threshold", type=float, default=0.25)
    args = parser.parse_args()

    current = [group for path in args.current for group in load_groups(path)]
    baseline = load_groups(args.baseline)

    # A report that parsed but contains no benchmarks at all is a broken
    # or truncated file, not an empty result set — refuse it rather than
    # letting every lookup "miss" into messages about the wrong thing.
    if not any(current):
        print("FAIL: no benchmark entries in any current report")
        return 1
    if not any(baseline):
        print(f"FAIL: no benchmark entries in the baseline {args.baseline}")
        return 1

    # Every gated benchmark is checked and reported before the gate
    # decides: an early return on the first problem would silently skip
    # the rest of the list.
    failed = False
    broken = False
    for name in GATED:
        cur = calibrated(current, name, "current")
        base = calibrated(baseline, name, "baseline")
        if cur is None or base is None:
            broken = True
            continue
        change = cur / base - 1.0
        verdict = "ok"
        if change > args.threshold:
            verdict = f"REGRESSION (> {args.threshold:.0%})"
            failed = True
        print(
            f"{name}: baseline {base:.2f} -> current {cur:.2f} "
            f"calibration units ({change:+.1%}) {verdict}"
        )

    if broken:
        print(
            "\nGate is incomplete: benchmark(s) or calibration missing "
            "(see FAIL lines above). A gated benchmark that cannot be "
            "compared fails the gate — it does not pass it. If a "
            "benchmark was added or renamed, refresh "
            "bench/BENCH_baseline.json."
        )
        return 1
    if failed:
        print(
            "\nCase-study solve regressed beyond the threshold. If the "
            "slowdown is intended, refresh bench/BENCH_baseline.json."
        )
        return 1
    print("\nAll gated benchmarks within threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
