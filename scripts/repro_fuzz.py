#!/usr/bin/env python3
"""Reproduce ttdim soundness-fuzzer findings locally.

Three modes, all thin wrappers over the deterministic ttdim_fuzz binary:

  replay    re-run one artifact (or a directory of them) — a red replay is
            the finding resurfacing on your tree:
                scripts/repro_fuzz.py replay fuzz-artifacts/cex_ab12.ttfz
                scripts/repro_fuzz.py replay tests/corpus

  campaign  re-run a whole campaign from its seed (reports are a pure
            function of seed + iterations, so the nightly report's header
            is everything you need):
                scripts/repro_fuzz.py campaign --seed 123456 \\
                    --iterations 2000 --max-apps 7 --solve-every 100

  mint      regenerate the checked-in seed corpus after an intentional
            format or semantics change:
                scripts/repro_fuzz.py mint

The binary is rebuilt first unless --no-build is given.
"""

import argparse
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent


def build(build_dir: pathlib.Path) -> None:
    if not (build_dir / "CMakeCache.txt").exists():
        subprocess.run(["cmake", "-B", str(build_dir), "-S", str(REPO)],
                       check=True)
    subprocess.run(
        ["cmake", "--build", str(build_dir), "-j", "--target", "ttdim_fuzz"],
        check=True)


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", default=str(REPO / "build"))
    parser.add_argument("--no-build", action="store_true",
                        help="use the existing ttdim_fuzz binary as-is")
    sub = parser.add_subparsers(dest="mode", required=True)

    replay = sub.add_parser("replay", help="replay artifact file or directory")
    replay.add_argument("target", help="a .ttfz file or a directory of them")
    replay.add_argument("--disk-cache", default="",
                        help="persistent cache directory: cross-check "
                             "disk-tier verdicts against fresh proofs")

    campaign = sub.add_parser("campaign", help="re-run a campaign from a seed")
    campaign.add_argument("--seed", required=True)
    campaign.add_argument("--iterations", default="2000")
    campaign.add_argument("--max-apps", default="7")
    campaign.add_argument("--solve-every", default="100")
    campaign.add_argument("--artifacts-out", default="fuzz-artifacts")
    campaign.add_argument("--disk-cache", default="",
                          help="persistent cache directory: add the "
                               "disk-backed oracle configuration (what "
                               "nightly CI runs)")

    mint = sub.add_parser("mint", help="regenerate the seed corpus")
    mint.add_argument("--out", default=str(REPO / "tests" / "corpus"))

    args = parser.parse_args()
    build_dir = pathlib.Path(args.build_dir)
    if not args.no_build:
        build(build_dir)
    binary = build_dir / "ttdim_fuzz"
    if not binary.exists():
        print(f"error: {binary} not found (build first or pass --build-dir)",
              file=sys.stderr)
        return 2

    if args.mode == "replay":
        target = pathlib.Path(args.target)
        flag = "--replay-dir" if target.is_dir() else "--replay"
        cmd = [str(binary), flag, str(target)]
        if args.disk_cache:
            cmd += ["--disk-cache", args.disk_cache]
    elif args.mode == "campaign":
        cmd = [str(binary), "--seed", args.seed,
               "--iterations", args.iterations,
               "--max-apps", args.max_apps,
               "--solve-every", args.solve_every,
               "--artifacts-out", args.artifacts_out,
               "--require-full-coverage"]
        if args.disk_cache:
            cmd += ["--disk-cache", args.disk_cache]
    else:  # mint
        cmd = [str(binary), "--mint-corpus", args.out]

    print("+ " + " ".join(cmd), file=sys.stderr)
    return subprocess.run(cmd, check=False).returncode


if __name__ == "__main__":
    sys.exit(main())
