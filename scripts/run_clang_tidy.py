#!/usr/bin/env python3
"""clang-tidy ratchet: run the curated .clang-tidy checks over src/ and
fail on any finding not already recorded in bench/TIDY_baseline.json.

The baseline maps "relative/path.cpp:check-name" -> count. It is
committed EMPTY: the gate is zero-warning, and the ratchet shape exists
so that (a) a future unavoidable finding can be grandfathered explicitly
rather than by turning the check off for everyone, and (b) the failure
mode is "you added finding X at Y" instead of a wall of tidy output.

Usage:
    scripts/run_clang_tidy.py [-p build] [--update-baseline]

Needs a compile_commands.json in the build dir (the root CMakeLists sets
CMAKE_EXPORT_COMPILE_COMMANDS ON, so any configured build tree has one).
Exits 0 when clean (or improved), non-zero on new findings or tool error.
"""

import argparse
import json
import multiprocessing
import re
import shutil
import subprocess
import sys
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "bench" / "TIDY_baseline.json"

# "/abs/file.cpp:12:5: warning: message text [check-name]"
FINDING_RE = re.compile(
    r"^(?P<file>/[^:]+):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<message>.*?) \[(?P<check>[A-Za-z0-9.,_-]+)\]$"
)


def tidy_targets(build_dir: Path) -> list[str]:
    """Translation units under src/, from the build's compile_commands."""
    compile_db = build_dir / "compile_commands.json"
    if not compile_db.is_file():
        sys.exit(
            f"error: {compile_db} not found — configure the build first "
            f"(cmake -B {build_dir} -S .)"
        )
    src_prefix = str(REPO_ROOT / "src") + "/"
    files = sorted(
        {
            entry["file"]
            for entry in json.loads(compile_db.read_text())
            if entry["file"].startswith(src_prefix)
        }
    )
    if not files:
        sys.exit(f"error: no src/ translation units in {compile_db}")
    return files


def run_tidy(binary: str, build_dir: Path, files: list[str], jobs: int) -> str:
    """Run clang-tidy over every file, return the concatenated stdout."""

    def one(path: str) -> str:
        proc = subprocess.run(
            [binary, "-p", str(build_dir), "--quiet", path],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        # clang-tidy exits non-zero when it emits findings; only a run
        # with no parseable findings AND a non-zero exit is a tool error
        # (bad flags, unparseable TU), which must not pass silently.
        if proc.returncode != 0 and not any(
            FINDING_RE.match(line) for line in proc.stdout.splitlines()
        ):
            sys.stderr.write(proc.stdout + proc.stderr)
            raise RuntimeError(f"clang-tidy failed on {path}")
        return proc.stdout

    with ThreadPoolExecutor(max_workers=jobs) as pool:
        try:
            return "\n".join(pool.map(one, files))
        except RuntimeError as err:
            sys.exit(f"error: {err}")


def collect_findings(output: str) -> Counter:
    """Dedup findings (headers reappear once per including TU), then
    count per (relative file, check)."""
    unique = set()
    for line in output.splitlines():
        match = FINDING_RE.match(line)
        if not match:
            continue
        path = Path(match["file"]).resolve()
        try:
            rel = path.relative_to(REPO_ROOT)
        except ValueError:
            continue  # system / _deps header that slipped the filter
        unique.add((str(rel), match["line"], match["col"], match["check"], match["message"]))
    counts = Counter()
    for rel, _line, _col, check, _message in unique:
        for single in check.split(","):  # one diagnostic can carry aliases
            counts[f"{rel}:{single}"] += 1
    return counts


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-p", "--build-dir", default="build", type=Path,
                        help="build tree with compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary to use")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, type=Path)
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to match current findings")
    parser.add_argument("-j", "--jobs", type=int,
                        default=multiprocessing.cpu_count())
    args = parser.parse_args()

    if shutil.which(args.clang_tidy) is None:
        sys.exit(f"error: {args.clang_tidy!r} not on PATH")

    build_dir = (REPO_ROOT / args.build_dir).resolve()
    files = tidy_targets(build_dir)
    print(f"clang-tidy over {len(files)} TUs (jobs={args.jobs})", flush=True)
    counts = collect_findings(run_tidy(args.clang_tidy, build_dir, files, args.jobs))

    if args.update_baseline:
        args.baseline.write_text(
            json.dumps(dict(sorted(counts.items())), indent=2) + "\n")
        print(f"baseline updated: {len(counts)} entries -> {args.baseline}")
        return 0

    baseline = Counter(json.loads(args.baseline.read_text()))
    new = counts - baseline
    fixed = baseline - counts
    if fixed:
        print(f"note: {sum(fixed.values())} baselined finding(s) no longer "
              f"occur — run with --update-baseline to ratchet down")
    if new:
        print(f"FAIL: {sum(new.values())} new clang-tidy finding(s) vs "
              f"{args.baseline.name}:")
        for key, count in sorted(new.items()):
            print(f"  {key}  (+{count})")
        print("fix them, or (only with reviewer sign-off) grandfather via "
              "--update-baseline")
        return 1
    print(f"OK: no new findings ({sum(counts.values())} total, "
          f"{sum(baseline.values())} baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
