// Online re-dimensioning under churn (core/session.h): the standing
// DimensioningSession absorbs add/remove/re-rate deltas through its warm
// oracle, versus the only alternative a daemon without redimension()
// has — a from-scratch core::solve of the whole population per event.
// The report walks a seeded ChurnTrace three ways: first-sight (a fresh
// session meeting each novel rate for the first time — re-rates still
// pay real proofs, removals are free), steady-state warm (a session
// whose shared caches have seen the pattern — every probe is an exact
// hit, the daemon regime the >= 10x acceptance of ISSUE 10 describes),
// and cold (a private-cache core::solve per event). The gated pair
// below pins the steady-state warm redimension cost and the cold
// per-event cost against bench/BENCH_baseline.json via
// scripts/check_bench_regression.py.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/session.h"
#include "engine/analysis/analysis_cache.h"
#include "engine/oracle/snapshot_cache.h"
#include "engine/oracle/verdict_cache.h"
#include "engine/scenario_generator.h"

namespace {

using namespace ttdim;

std::vector<core::AppSpec> case_study_specs() {
  std::vector<core::AppSpec> specs;
  for (const casestudy::App& app : casestudy::all_apps())
    specs.push_back({app.name, app.plant, app.kt, app.ke,
                     app.min_interarrival, app.settling_requirement});
  return specs;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void report() {
  std::printf("==== Online re-dimensioning: churn walk, warm session vs "
              "cold per-event solve ====\n");
  const std::vector<core::AppSpec> specs = case_study_specs();
  core::DimensioningSession session;
  const core::Solution initial = session.solve(specs);
  std::printf("initial solve : %s\n", initial.stats.summary().c_str());

  // The same replayable event stream the fuzzer's churn differential
  // walks: each application's first kAdd is its registration (covered by
  // the initial solve above), every later event becomes one delta.
  std::vector<verify::AppTiming> timings;
  for (const core::AppSolution& app : initial.apps)
    timings.push_back(app.timing);
  engine::ScenarioGenerator gen(timings, 42);
  const engine::ChurnTrace trace = gen.churn_trace(3);

  // A removal that would empty the population is skipped together with
  // its paired re-add (the fuzzer churn differential's walk alignment).
  std::vector<core::Delta> deltas;
  std::vector<bool> seen_first_add(specs.size(), false);
  std::vector<bool> skip_next_add(specs.size(), false);
  int active = static_cast<int>(specs.size());
  for (const engine::ChurnEvent& event : trace.events) {
    const std::size_t a = static_cast<std::size_t>(event.app);
    core::Delta delta;
    switch (event.kind) {
      case engine::ChurnEventKind::kAdd: {
        if (!seen_first_add[a]) {
          seen_first_add[a] = true;
          continue;
        }
        if (skip_next_add[a]) {
          skip_next_add[a] = false;
          continue;
        }
        core::AppSpec spec = specs[a];
        spec.min_interarrival = event.min_interarrival;
        delta.add.push_back(spec);
        ++active;
        break;
      }
      case engine::ChurnEventKind::kRemove:
        if (active <= 1) {
          skip_next_add[a] = true;
          continue;
        }
        delta.remove.push_back(specs[a].name);
        --active;
        break;
      case engine::ChurnEventKind::kRerate: {
        core::AppSpec spec = specs[a];
        spec.min_interarrival = event.min_interarrival;
        delta.rerate.push_back(spec);
        break;
      }
    }
    deltas.push_back(std::move(delta));
  }

  const auto t_first = std::chrono::steady_clock::now();
  long events = 0;
  for (const core::Delta& delta : deltas) {
    const core::Solution next = session.redimension(delta);
    events += next.stats.redimension_events;
  }
  const double first_ms = ms_since(t_first);
  std::printf("first-sight   : %ld events in %.1f ms (%.2f ms/event) — "
              "novel re-rates pay fresh proofs\n",
              events, first_ms, first_ms / static_cast<double>(events));

  // Steady state: a session whose shared caches have already seen this
  // churn pattern (a daemon over a recurring workload). The shadow
  // session warms the caches untimed and materializes the populations
  // the cold loop below re-solves; the timed walk then answers every
  // probe from the exact tier.
  core::SolveOptions shared_options;
  shared_options.verdict_cache =
      std::make_shared<engine::oracle::VerdictCache>();
  shared_options.snapshot_cache =
      std::make_shared<engine::oracle::SnapshotCache>();
  shared_options.analysis_cache =
      std::make_shared<engine::analysis::AnalysisCache>();
  std::vector<std::vector<core::AppSpec>> populations;
  {
    core::DimensioningSession shadow(shared_options);
    static_cast<void>(shadow.solve(specs));
    for (const core::Delta& delta : deltas) {
      static_cast<void>(shadow.redimension(delta));
      populations.push_back(shadow.specs());
    }
  }
  core::DimensioningSession steady(shared_options);
  static_cast<void>(steady.solve(specs));
  const auto t_steady = std::chrono::steady_clock::now();
  for (const core::Delta& delta : deltas)
    static_cast<void>(steady.redimension(delta));
  const double steady_ms = ms_since(t_steady);
  std::printf("steady-state  : %ld events in %.1f ms (%.2f ms/event), "
              "final %s\n",
              events, steady_ms, steady_ms / static_cast<double>(events),
              steady.solution().stats.summary().c_str());

  // The cold path pays a full private-cache solve for every population
  // the walk visits.
  const auto t_cold = std::chrono::steady_clock::now();
  for (const std::vector<core::AppSpec>& population : populations)
    static_cast<void>(core::solve(population));
  const double cold_ms = ms_since(t_cold);
  std::printf("cold per-event: %zu solves in %.1f ms (%.1f ms/event)\n",
              populations.size(), cold_ms,
              cold_ms / static_cast<double>(events));
  std::printf("ratio         : warm redimension is %.0fx cheaper per "
              "event steady-state (%.1fx first-sight)\n\n",
              cold_ms / steady_ms, cold_ms / first_ms);
}

void BM_RedimensionWarmChurn(benchmark::State& state) {
  // Steady-state warm redimension: one remove + one re-add of C6 per
  // iteration, restoring the population each time. The removal is
  // proof-free; the re-add first-fits through the session's warm verdict
  // tier, so after the first iteration every probe is an exact hit.
  const std::vector<core::AppSpec> specs = case_study_specs();
  core::DimensioningSession session;
  static_cast<void>(session.solve(specs));
  core::Delta remove_c6;
  remove_c6.remove.push_back(specs.back().name);
  core::Delta add_c6;
  add_c6.add.push_back(specs.back());
  static_cast<void>(session.redimension(remove_c6));  // warm the probes
  static_cast<void>(session.redimension(add_c6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.redimension(remove_c6));
    benchmark::DoNotOptimize(session.redimension(add_c6));
  }
}
BENCHMARK(BM_RedimensionWarmChurn)->Unit(benchmark::kMillisecond);

void BM_RedimensionColdPerEvent(benchmark::State& state) {
  // The alternative a redimension-less daemon pays for the same two
  // events: a full from-scratch solve (private caches) per population.
  const std::vector<core::AppSpec> specs = case_study_specs();
  const std::vector<core::AppSpec> without_c6(specs.begin(),
                                              specs.end() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(without_c6));
    benchmark::DoNotOptimize(core::solve(specs));
  }
}
BENCHMARK(BM_RedimensionColdPerEvent)->Unit(benchmark::kMillisecond);

}  // namespace

TTDIM_BENCH_MAIN(report)
