// Reproduces Fig. 3 of the paper: settling time as a function of wait time
// Tw and dwell time Tdw for the DC-motor system, once with the
// switching-stable pair KT + KsE and once with the unstable pair KT + KuE.
// The paper's message: the unstable pair's surface sits strictly above —
// designing without switching stability wastes resources. Prints both
// surfaces and the dominance statistics, then benchmarks the settling-map
// computation.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace ttdim;

constexpr int kWaitCount = 41;   // Tw = 0..40 samples (0..0.8 s)
constexpr int kDwellCount = 11;  // Tdw = 0..10 samples

switching::SettlingMap map_for(const control::Matrix& ke) {
  const casestudy::App app = casestudy::c1();
  const control::SwitchedLoop loop(app.plant, app.kt, ke);
  return switching::compute_settling_map(
      loop, kWaitCount, kDwellCount,
      control::SettlingSpec{casestudy::kSettlingTol, 2500});
}

void print_surface(const char* label, const switching::SettlingMap& map) {
  const double h = casestudy::kSamplingPeriod;
  std::printf("%s: settling time (s) over Tw (rows, step 4) x Tdw "
              "(cols)\n      ", label);
  for (int d = 0; d < kDwellCount; ++d) std::printf("%6d", d);
  std::printf("\n");
  for (int w = 0; w < kWaitCount; w += 4) {
    std::printf("Tw=%2d ", w);
    for (int d = 0; d < kDwellCount; ++d) {
      const auto& j = map.at(w, d);
      if (j.has_value())
        std::printf("%6.2f", *j * h);
      else
        std::printf("%6s", "-");
    }
    std::printf("\n");
  }
}

void report() {
  std::printf("==== Fig. 3: performance with and without switching "
              "stability ====\n");
  const switching::SettlingMap stable = map_for(casestudy::ke_stable());
  const switching::SettlingMap unstable = map_for(casestudy::ke_unstable());
  print_surface("KT + KsE (switching stable)", stable);
  std::printf("\n");
  print_surface("KT + KuE (not switching stable)", unstable);

  long stable_wins = 0;
  long ties = 0;
  long unstable_wins = 0;
  int worst_stable = 0;
  int worst_unstable = 0;
  for (int w = 0; w < kWaitCount; ++w) {
    for (int d = 0; d < kDwellCount; ++d) {
      const auto& js = stable.at(w, d);
      const auto& ju = unstable.at(w, d);
      if (js.has_value()) worst_stable = std::max(worst_stable, *js);
      if (ju.has_value()) worst_unstable = std::max(worst_unstable, *ju);
      if (!js.has_value() || !ju.has_value()) continue;
      if (*js < *ju)
        ++stable_wins;
      else if (*ju < *js)
        ++unstable_wins;
      else
        ++ties;
    }
  }
  const double h = casestudy::kSamplingPeriod;
  std::printf("\nstable pair better at %ld points, equal at %ld, worse at "
              "%ld\n",
              stable_wins, ties, unstable_wins);
  std::printf("worst settling: stable %.2f s, unstable %.2f s (paper "
              "surface tops out near 1 s)\n\n",
              worst_stable * h, worst_unstable * h);
}

void BM_SettlingMap(benchmark::State& state) {
  const casestudy::App app = casestudy::c1();
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  const control::SettlingSpec spec{casestudy::kSettlingTol, 2500};
  for (auto _ : state) {
    benchmark::DoNotOptimize(switching::compute_settling_map(
        loop, kWaitCount, kDwellCount, spec));
  }
}
BENCHMARK(BM_SettlingMap)->Unit(benchmark::kMillisecond);

}  // namespace

TTDIM_BENCH_MAIN(report)
