// Reproduces the "comments on verification time" study of paper Sec. 5:
// the cost of verifying slot partitions, and the speed-up from bounding
// the number of coinciding disturbance instances. The paper reports ~5 h
// for {C1,C5,C4,C3} in UPPAAL, cut to ~15 min (20x) by bounding; our
// engines are far faster in absolute terms (the discrete engine decides
// the same question exactly), so the artefact here is the relative cost
// across partitions, engines and bounds.
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_common.h"
#include "verify/discrete.h"
#include "verify/ta_model.h"

namespace {

using namespace ttdim;
using Clock = std::chrono::steady_clock;

double run_discrete(const std::vector<verify::AppTiming>& apps, int bound,
                    bool* safe, long* states) {
  const verify::DiscreteVerifier v(apps);
  verify::DiscreteVerifier::Options opt;
  opt.max_disturbances_per_app = bound;
  const auto t0 = Clock::now();
  const verify::SlotVerdict verdict = v.verify(opt);
  const auto t1 = Clock::now();
  *safe = verdict.safe;
  *states = verdict.states_explored;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double run_zone(const std::vector<verify::AppTiming>& apps, int bound,
                bool* safe, long* states) {
  const verify::ZoneVerifier v(apps);
  verify::ZoneVerifier::Options opt;
  opt.max_disturbances_per_app = bound;
  opt.max_states = 5'000'000;
  const auto t0 = Clock::now();
  const verify::SlotVerdict verdict = v.verify(opt);
  const auto t1 = Clock::now();
  *safe = verdict.safe;
  *states = verdict.states_explored;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void report() {
  std::printf("==== Sec. 5, verification time: engines, partitions, "
              "disturbance bounds ====\n");
  const verify::AppTiming c1 = bench::timing_of(casestudy::c1());
  const verify::AppTiming c2 = bench::timing_of(casestudy::c2());
  const verify::AppTiming c3 = bench::timing_of(casestudy::c3());
  const verify::AppTiming c4 = bench::timing_of(casestudy::c4());
  const verify::AppTiming c5 = bench::timing_of(casestudy::c5());
  const verify::AppTiming c6 = bench::timing_of(casestudy::c6());

  struct Row {
    const char* partition;
    std::vector<verify::AppTiming> apps;
  };
  const std::vector<Row> rows{{"{C1,C5}", {c1, c5}},
                              {"{C6,C2}", {c6, c2}},
                              {"{C1,C5,C4}", {c1, c5, c4}},
                              {"{C1,C5,C4,C3}", {c1, c5, c4, c3}}};

  std::printf("%-16s %-10s %-8s %10s %12s %8s\n", "partition", "engine",
              "bound", "time (ms)", "states", "verdict");
  for (const Row& row : rows) {
    bool safe = false;
    long states = 0;
    for (int bound : {-1, 2, 1}) {
      const double ms = run_discrete(row.apps, bound, &safe, &states);
      std::printf("%-16s %-10s %-8s %10.1f %12ld %8s\n", row.partition,
                  "discrete", bound < 0 ? "inf" : std::to_string(bound).c_str(),
                  ms, states, safe ? "safe" : "unsafe");
    }
    // The zone engine is the UPPAAL-faithful model; only run it where its
    // state space stays tractable (pairs).
    if (row.apps.size() <= 2) {
      for (int bound : {1, 2}) {
        const double ms = run_zone(row.apps, bound, &safe, &states);
        std::printf("%-16s %-10s %-8d %10.1f %12ld %8s\n", row.partition,
                    "zone", bound, ms, states, safe ? "safe" : "unsafe");
      }
    }
  }

  // The paper's acceleration headline, re-enacted on the zone engine: for
  // {C1,C5} compare the (slow) high-budget model against the bounded one.
  bool safe = false;
  long states = 0;
  const double slow = run_zone({c1, c5}, 3, &safe, &states);
  const double fast = run_zone({c1, c5}, 1, &safe, &states);
  std::printf("\nzone-engine bounded-disturbance speed-up on {C1,C5}: "
              "budget 3 -> 1 gives %.1fx (paper: ~20x from bounding "
              "coinciding instances in UPPAAL)\n\n",
              slow / fast);
}

void BM_DiscreteS1(benchmark::State& state) {
  const std::vector<verify::AppTiming> s1{
      bench::timing_of(casestudy::c1()), bench::timing_of(casestudy::c5()),
      bench::timing_of(casestudy::c4()), bench::timing_of(casestudy::c3())};
  const verify::DiscreteVerifier v(s1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.verify());
  }
}
BENCHMARK(BM_DiscreteS1)->Unit(benchmark::kMillisecond);

void BM_DiscreteS2(benchmark::State& state) {
  const std::vector<verify::AppTiming> s2{bench::timing_of(casestudy::c6()),
                                          bench::timing_of(casestudy::c2())};
  const verify::DiscreteVerifier v(s2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.verify());
  }
}
BENCHMARK(BM_DiscreteS2)->Unit(benchmark::kMillisecond);

void BM_DiscreteLarge(benchmark::State& state) {
  // The heap-fallback regime under the proof_threads sweep: 17
  // applications (one past the packed cap) with staggered deadlines and
  // a single-instance disturbance budget. The full space is intractable
  // — every state spawns ~2^16 disturbance subsets — so the proof is
  // budget-capped at 6 expansions: the root (the all-steady state, whose
  // expansion seeds a ~300k-state level-1 frontier) plus five level-1
  // states, then the expected budget throw. That is exactly the
  // successor-generation + batched-probe hot loop the serial rewrite
  // targets, and at proof_threads > 1 the level-1 expansions spread
  // across Executor chunks — wall-time gains need real cores (a 1-CPU
  // box reports parity), which is why the gate below pins /1 and /8
  // separately instead of their ratio.
  std::vector<verify::AppTiming> apps;
  for (int i = 0; i < 17; ++i) {
    verify::AppTiming a;
    a.name = "L" + std::to_string(i);
    a.t_star_w = 2 + (i % 4);
    a.t_minus.assign(static_cast<size_t>(a.t_star_w) + 1, 1);
    a.t_plus.assign(static_cast<size_t>(a.t_star_w) + 1, 1);
    a.min_interarrival = 8;
    apps.push_back(std::move(a));
  }
  const verify::DiscreteVerifier v(apps);
  verify::DiscreteVerifier::Options opt;
  opt.max_disturbances_per_app = 1;
  opt.max_states = 6;
  opt.proof_threads = static_cast<int>(state.range(0));
  long exhausted = 0;
  for (auto _ : state) {
    try {
      benchmark::DoNotOptimize(v.verify(opt));
    } catch (const std::runtime_error&) {
      ++exhausted;  // the expected outcome: the budget caps the proof
    }
  }
  state.SetLabel("threads " + std::to_string(state.range(0)) + ", " +
                 std::to_string(exhausted) + " budget-capped");
}
BENCHMARK(BM_DiscreteLarge)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ZonePair(benchmark::State& state) {
  const std::vector<verify::AppTiming> pair{
      bench::timing_of(casestudy::c1()), bench::timing_of(casestudy::c5())};
  const verify::ZoneVerifier v(pair);
  verify::ZoneVerifier::Options opt;
  opt.max_disturbances_per_app = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.verify(opt));
  }
  state.SetLabel("budget " + std::to_string(state.range(0)));
}
BENCHMARK(BM_ZonePair)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

TTDIM_BENCH_MAIN(report)
