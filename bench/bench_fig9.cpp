// Reproduces Fig. 9 of the paper: responses of C2 and C6 sharing TT slot
// S2, with C6 disturbed 10 samples after C2. Neither is preempted, both
// reach the dedicated-slot performance JT, and — the paper's closing
// observation — C2 occupies the slot for only ~10 samples where the
// conservative scheme of [9] would hold it for 15.
#include <cstdio>

#include "bench_common.h"
#include "core/dimensioning.h"

namespace {

using namespace ttdim;

std::vector<core::AppSolution> slot_s2_apps() {
  std::vector<core::AppSolution> out;
  for (const casestudy::App& app : {casestudy::c2(), casestudy::c6()}) {
    core::AppSolution s{{app.name, app.plant, app.kt, app.ke,
                         app.min_interarrival, app.settling_requirement},
                        bench::tables_of(app),
                        bench::timing_of(app),
                        {}};
    out.push_back(std::move(s));
  }
  return out;
}

sched::Scenario fig9_scenario() {
  sched::Scenario sc;
  sc.horizon = 80;
  sc.disturbances = {{0}, {10}};  // C2 at 0, C6 ten samples later
  return sc;
}

void report() {
  std::printf("==== Fig. 9: responses of C2 and C6 sharing slot S2 ====\n");
  const std::vector<core::AppSolution> apps = slot_s2_apps();
  const core::CoSimResult sim =
      core::cosimulate(apps, fig9_scenario(), casestudy::kSettlingTol);

  std::printf("events:\n%s",
              [&] {
                std::vector<verify::AppTiming> timings;
                for (const auto& a : apps) timings.push_back(a.timing);
                return sim.schedule.describe_events(timings);
              }()
                  .c_str());

  int c2_tt_samples = 0;
  for (bool b : sim.schedule.tt_mask[0]) c2_tt_samples += b ? 1 : 0;
  std::printf("\nC2 used the TT slot for %d samples; the conservative "
              "scheme of [9] would hold it for JT = %d samples for the "
              "same settling time (paper: 10 vs 15).\n",
              c2_tt_samples, apps[0].tables.settling_tt);

  std::printf("\nsettling summary (paper: both reach the dedicated-slot "
              "performance):\n");
  for (size_t i = 0; i < apps.size(); ++i)
    std::printf("  %s: J = %d samples (JT = %d, J* = %d)  %s\n",
                apps[i].spec.name.c_str(), sim.settling[i].value_or(-1),
                apps[i].tables.settling_tt,
                apps[i].spec.settling_requirement,
                sim.settling[i].value_or(INT32_MAX) <=
                        apps[i].spec.settling_requirement
                    ? "OK"
                    : "VIOLATED");

  std::printf("\ny(t) series (time measured from each app's own "
              "disturbance), step 0.04 s:\n%-8s%10s%10s\n", "t", "C2", "C6");
  for (size_t k = 0; k < 26; k += 2)
    std::printf("%-8.2f%10.4f%10.4f\n", k * casestudy::kSamplingPeriod,
                sim.traces[0][k].y, sim.traces[1][k].y);
  std::printf("\n");
}

void BM_Fig9CoSimulation(benchmark::State& state) {
  const std::vector<core::AppSolution> apps = slot_s2_apps();
  const sched::Scenario scenario = fig9_scenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::cosimulate(apps, scenario, casestudy::kSettlingTol));
  }
}
BENCHMARK(BM_Fig9CoSimulation)->Unit(benchmark::kMicrosecond);

}  // namespace

TTDIM_BENCH_MAIN(report)
