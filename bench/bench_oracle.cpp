// The admission-oracle layer: end-to-end case-study solve time (the
// ROADMAP's intra-solve hot path) across the oracle tiers — from-scratch
// reference, cold four-tier solve, warm shared verdict cache (exact
// hits), warm shared snapshot cache (prefix hits; the cross-config
// subsumption regime is bench_batch's BM_CaseStudySolveSubsumptionWarm)
// — plus a CPU
// calibration loop that lets scripts/check_bench_regression.py normalize
// solve times across machines of different speed.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/dimensioning.h"
#include "engine/analysis/analysis_cache.h"
#include "engine/oracle/snapshot_cache.h"
#include "engine/oracle/verdict_cache.h"

namespace {

using namespace ttdim;

std::vector<core::AppSpec> case_study_specs() {
  std::vector<core::AppSpec> specs;
  for (const casestudy::App& app : casestudy::all_apps())
    specs.push_back({app.name, app.plant, app.kt, app.ke,
                     app.min_interarrival, app.settling_requirement});
  return specs;
}

void report() {
  std::printf("==== Incremental admission oracle: case-study solve ====\n");
  const std::vector<core::AppSpec> specs = case_study_specs();

  core::SolveOptions reference;
  reference.memoize_admission = false;
  reference.incremental_admission = false;
  const core::Solution scratch = core::solve(specs, reference);
  std::printf("scratch  : %s\n", scratch.stats.summary().c_str());

  const core::Solution cold = core::solve(specs);  // private caches
  std::printf("cold     : %s\n", cold.stats.summary().c_str());

  const auto cache = std::make_shared<engine::oracle::VerdictCache>();
  core::SolveOptions memoized;
  memoized.verdict_cache = cache;
  const core::Solution first = core::solve(specs, memoized);
  std::printf("memoized : %s\n", first.stats.summary().c_str());
  const core::Solution warm = core::solve(specs, memoized);
  std::printf("warm     : %s\n", warm.stats.summary().c_str());
  const auto stats = cache->stats();
  std::printf("cache    : %ld hits, %ld misses, %ld insertions, "
              "%ld evictions\n",
              stats.hits, stats.misses, stats.insertions, stats.evictions);

  // Prefix-hit regime: snapshots shared across solves, verdict caches
  // private — every probe misses the exact tier but extends a snapshot.
  const auto snapshots = std::make_shared<engine::oracle::SnapshotCache>();
  core::SolveOptions prefix;
  prefix.snapshot_cache = snapshots;
  static_cast<void>(core::solve(specs, prefix));  // warm the snapshots
  const core::Solution prefix_warm = core::solve(specs, prefix);
  std::printf("prefix   : %s\n", prefix_warm.stats.summary().c_str());
  const auto sstats = snapshots->stats();
  std::printf("snapshots: %ld hits, %ld misses, %ld insertions, "
              "%ld evictions, %zu entries, %.1f MB\n",
              sstats.hits, sstats.misses, sstats.insertions, sstats.evictions,
              sstats.entries, static_cast<double>(sstats.bytes) / 1048576.0);

  // Analysis-warm regime: per-app stability/dwell answered from a shared
  // AnalysisCache, admission caches private per solve — the mapping is
  // proved fresh while the ~stability+dwell cost is memoized away.
  const auto analyses = std::make_shared<engine::analysis::AnalysisCache>();
  core::SolveOptions analysis_warm_options;
  analysis_warm_options.analysis_cache = analyses;
  static_cast<void>(core::solve(specs, analysis_warm_options));  // warm it
  const core::Solution analysis_warm =
      core::solve(specs, analysis_warm_options);
  std::printf("analysis : %s\n", analysis_warm.stats.summary().c_str());
  const auto astats = analyses->stats();
  std::printf("analyses : %ld hits, %ld misses, %ld insertions, "
              "%ld evictions, %zu entries, %.1f KB\n\n",
              astats.hits, astats.misses, astats.insertions, astats.evictions,
              astats.entries, static_cast<double>(astats.bytes) / 1024.0);
}

void BM_CaseStudySolve(benchmark::State& state) {
  const std::vector<core::AppSpec> specs = case_study_specs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(specs));
  }
}
BENCHMARK(BM_CaseStudySolve)->Unit(benchmark::kMillisecond);

void BM_CaseStudySolveUncached(benchmark::State& state) {
  // The from-scratch reference: one fresh proof per probe, no tiers.
  const std::vector<core::AppSpec> specs = case_study_specs();
  core::SolveOptions options;
  options.memoize_admission = false;
  options.incremental_admission = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(specs, options));
  }
}
BENCHMARK(BM_CaseStudySolveUncached)->Unit(benchmark::kMillisecond);

void BM_CaseStudySolveWarmCache(benchmark::State& state) {
  const std::vector<core::AppSpec> specs = case_study_specs();
  core::SolveOptions options;
  options.verdict_cache = std::make_shared<engine::oracle::VerdictCache>();
  benchmark::DoNotOptimize(core::solve(specs, options));  // warm it
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(specs, options));
  }
}
BENCHMARK(BM_CaseStudySolveWarmCache)->Unit(benchmark::kMillisecond);

void BM_CaseStudySolvePrefixWarm(benchmark::State& state) {
  // Tier-2 regime: the snapshot cache is shared across solves but every
  // verdict cache is private, so each probe misses the exact tier and
  // either extends a cached prefix reachable set or is refuted by the
  // bounded depth-first dive.
  const std::vector<core::AppSpec> specs = case_study_specs();
  core::SolveOptions options;
  options.snapshot_cache = std::make_shared<engine::oracle::SnapshotCache>();
  benchmark::DoNotOptimize(core::solve(specs, options));  // warm the snapshots
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(specs, options));
  }
}
BENCHMARK(BM_CaseStudySolvePrefixWarm)->Unit(benchmark::kMillisecond);

}  // namespace

TTDIM_BENCH_MAIN(report)
