// Shared helpers for the bench binaries: case-study timing extraction and
// the print-then-benchmark main.
#pragma once

#include <benchmark/benchmark.h>

#include "casestudy/apps.h"
#include "control/sim.h"
#include "switching/dwell.h"
#include "verify/app_timing.h"

namespace ttdim::bench {

inline switching::DwellAnalysisSpec dwell_spec(const casestudy::App& app) {
  switching::DwellAnalysisSpec spec;
  spec.settling_requirement = app.settling_requirement;
  spec.settling = control::SettlingSpec{casestudy::kSettlingTol, 3000};
  return spec;
}

inline switching::DwellTables tables_of(const casestudy::App& app) {
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  return switching::compute_dwell_tables(loop, dwell_spec(app));
}

inline verify::AppTiming timing_of(const casestudy::App& app) {
  return verify::make_app_timing(app.name, tables_of(app),
                                 app.min_interarrival);
}

}  // namespace ttdim::bench

/// Fixed CPU-bound workload, hardware-dependent but input-independent:
/// scripts/check_bench_regression.py divides every gated solve time by
/// the calibration time *from the same report*, which cancels the
/// machine's scalar speed. Registered by every bench binary through this
/// header so each binary's JSON is self-normalizing — gated benches must
/// never be normalized by a calibration run in a different process.
inline void BM_Calibration(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 1.0;
    for (int i = 1; i <= 4'000'000; ++i)
      acc += 1.0 / (static_cast<double>(i) * static_cast<double>(i));
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_Calibration)->Unit(benchmark::kMillisecond);

/// Every bench binary prints its reproduced artefact once, then runs the
/// registered google-benchmark timings.
#define TTDIM_BENCH_MAIN(report_fn)                  \
  int main(int argc, char** argv) {                  \
    report_fn();                                     \
    ::benchmark::Initialize(&argc, argv);            \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();           \
    ::benchmark::Shutdown();                         \
    return 0;                                        \
  }
