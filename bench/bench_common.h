// Shared helpers for the bench binaries: case-study timing extraction and
// the print-then-benchmark main.
#pragma once

#include <benchmark/benchmark.h>

#include "casestudy/apps.h"
#include "control/sim.h"
#include "switching/dwell.h"
#include "verify/app_timing.h"

namespace ttdim::bench {

inline switching::DwellAnalysisSpec dwell_spec(const casestudy::App& app) {
  switching::DwellAnalysisSpec spec;
  spec.settling_requirement = app.settling_requirement;
  spec.settling = control::SettlingSpec{casestudy::kSettlingTol, 3000};
  return spec;
}

inline switching::DwellTables tables_of(const casestudy::App& app) {
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  return switching::compute_dwell_tables(loop, dwell_spec(app));
}

inline verify::AppTiming timing_of(const casestudy::App& app) {
  return verify::make_app_timing(app.name, tables_of(app),
                                 app.min_interarrival);
}

}  // namespace ttdim::bench

/// Every bench binary prints its reproduced artefact once, then runs the
/// registered google-benchmark timings.
#define TTDIM_BENCH_MAIN(report_fn)                  \
  int main(int argc, char** argv) {                  \
    report_fn();                                     \
    ::benchmark::Initialize(&argc, argv);            \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();           \
    ::benchmark::Shutdown();                         \
    return 0;                                        \
  }
