// Reproduces Fig. 4 of the paper: minimum and maximum dwell times (T-dw,
// T+dw) versus wait time Tw for the DC-motor system with J* = 0.36 s,
// each point annotated with the achieved settling time — the data that
// shows staying in MT until full rejection is overly pessimistic.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace ttdim;

void report() {
  std::printf("==== Fig. 4: minimum and maximum dwell times vs wait time "
              "(C1, J* = 0.36 s) ====\n");
  const casestudy::App app = casestudy::c1();
  const switching::DwellTables t = bench::tables_of(app);
  const double h = app.plant.h();
  std::printf("%4s  %6s %10s  %6s %10s\n", "Tw", "T-dw", "J@T- (s)", "T+dw",
              "J@T+ (s)");
  for (int w = 0; w <= t.t_star_w; ++w) {
    std::printf("%4d  %6d %10.2f  %6d %10.2f\n", w,
                t.t_minus[static_cast<size_t>(w)],
                t.settling_at_minus[static_cast<size_t>(w)] * h,
                t.t_plus[static_cast<size_t>(w)],
                t.settling_at_plus[static_cast<size_t>(w)] * h);
  }
  std::printf("\npaper landmarks: at Tw = 0, T+dw = 6 achieves J = 0.18 s "
              "(= JT); the best achievable settling time is non-decreasing "
              "in Tw; beyond T*w = %d no dwell meets J* = %.2f s.\n",
              t.t_star_w, app.settling_requirement * h);
  // Verify the landmarks programmatically so regressions are loud.
  bool monotone = true;
  for (size_t i = 1; i < t.settling_at_plus.size(); ++i)
    monotone &= t.settling_at_plus[i] >= t.settling_at_plus[i - 1];
  std::printf("checks: J@T+(0) == JT: %s;  monotone J@T+: %s\n\n",
              t.settling_at_plus[0] == t.settling_tt ? "yes" : "NO",
              monotone ? "yes" : "NO");
}

void BM_Fig4DwellTables(benchmark::State& state) {
  const casestudy::App app = casestudy::c1();
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  const auto spec = bench::dwell_spec(app);
  for (auto _ : state) {
    benchmark::DoNotOptimize(switching::compute_dwell_tables(loop, spec));
  }
}
BENCHMARK(BM_Fig4DwellTables)->Unit(benchmark::kMillisecond);

void BM_Fig4Granularity(benchmark::State& state) {
  // Ablation: the paper's Tw-granularity knob trades table size for
  // conservativeness; coarser grids are cheaper to compute too.
  const casestudy::App app = casestudy::c1();
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  auto spec = bench::dwell_spec(app);
  spec.tw_granularity = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(switching::compute_dwell_tables(loop, spec));
  }
  state.SetLabel("granularity " + std::to_string(state.range(0)));
}
BENCHMARK(BM_Fig4Granularity)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

TTDIM_BENCH_MAIN(report)
