// Reproduces the resource-mapping result of paper Sec. 5: the proposed
// switching strategy with model-checking admission packs the six
// applications into 2 TT slots where the conservative analyses of [9] need
// 4 — a 50 % saving. Prints all three slot assignments and benchmarks the
// admission oracles and the end-to-end solve.
#include <cstdio>

#include "bench_common.h"
#include "core/dimensioning.h"
#include "sched/baseline.h"
#include "verify/discrete.h"

namespace {

using namespace ttdim;

std::vector<core::AppSpec> specs() {
  std::vector<core::AppSpec> out;
  for (const casestudy::App& app : casestudy::all_apps())
    out.push_back({app.name, app.plant, app.kt, app.ke,
                   app.min_interarrival, app.settling_requirement});
  return out;
}

void print_assignment(const core::Solution& s, const char* label,
                      const mapping::SlotAssignment& a) {
  std::printf("%-45s %d slot(s): ", label, a.slot_count());
  for (size_t k = 0; k < a.slots.size(); ++k) {
    std::printf("{");
    for (size_t j = 0; j < a.slots[k].size(); ++j)
      std::printf("%s%s",
                  s.apps[static_cast<size_t>(a.slots[k][j])].spec.name.c_str(),
                  j + 1 < a.slots[k].size() ? "," : "");
    std::printf("}%s", k + 1 < a.slots.size() ? " " : "");
  }
  std::printf("\n");
}

void report() {
  std::printf("==== Sec. 5 resource mapping: proposed vs baseline [9] "
              "====\n");
  const core::Solution s = core::solve(specs());
  print_assignment(s, "proposed (model checking)", s.proposed);
  print_assignment(s, "baseline [9] strategy 1 (NP-DM)", s.baseline_np);
  print_assignment(s, "baseline [9] strategy 2 (delayed requests)",
                   s.baseline_delayed);
  std::printf("saving: %.0f %% (paper: 50 %%, partitions {C1,C5} {C4,C3} "
              "{C6} {C2})\n\n",
              100.0 * s.saving_vs_baseline());
}

void BM_EndToEndSolve(benchmark::State& state) {
  const std::vector<core::AppSpec> sp = specs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(sp));
  }
}
BENCHMARK(BM_EndToEndSolve)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->Iterations(1);

void BM_AdmissionModelChecking(benchmark::State& state) {
  // The oracle call that admits {C1,C5,C4,C3} into one slot.
  const std::vector<verify::AppTiming> slot{
      bench::timing_of(casestudy::c1()), bench::timing_of(casestudy::c5()),
      bench::timing_of(casestudy::c4()), bench::timing_of(casestudy::c3())};
  const verify::DiscreteVerifier verifier(slot);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify());
  }
}
BENCHMARK(BM_AdmissionModelChecking)->Unit(benchmark::kMillisecond);

void BM_AdmissionBaseline(benchmark::State& state) {
  // The corresponding closed-form [9] admission check (microseconds —
  // which is why it can afford to be conservative).
  std::vector<sched::BaselineApp> apps;
  for (const casestudy::App& app : casestudy::all_apps()) {
    const auto tables = ttdim::bench::tables_of(app);
    apps.push_back(sched::make_baseline_app(ttdim::bench::timing_of(app),
                                            tables.settling_tt));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::analyze_baseline_slot(
        apps, sched::BaselineStrategy::kNonPreemptiveDm));
  }
}
BENCHMARK(BM_AdmissionBaseline)->Unit(benchmark::kMicrosecond);

}  // namespace

TTDIM_BENCH_MAIN(report)
