// Reproduces Table 1 of the paper: per application the settling times JT
// (dedicated slot) and JE (dynamic segment only), the maximum wait T*w and
// the dwell-time arrays T-dw / T+dw, side by side with the values printed
// in the paper. Then benchmarks the dwell-time analysis per application.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace ttdim;

struct PaperRow {
  int r, j_star, jt, je, t_star;
  std::vector<int> t_minus;
  std::vector<int> t_plus;
};

// Values transcribed from Table 1 (C6's phi sign corrected, see
// EXPERIMENTS.md "data corrections").
const std::vector<PaperRow>& paper_rows() {
  static const std::vector<PaperRow> rows{
      {25, 18, 9, 35, 11,
       {3, 4, 3, 3, 3, 3, 3, 3, 3, 4, 4, 5},
       {6, 6, 5, 5, 5, 6, 5, 5, 4, 4, 5, 5}},
      {100, 25, 15, 50, 13,
       {7, 7, 6, 7, 6, 7, 6, 7, 6, 7, 6, 7, 7, 8},
       {10, 10, 9, 10, 8, 9, 9, 10, 8, 8, 9, 8, 8, 8}},
      {50, 20, 10, 31, 15,
       {4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4},
       {8, 8, 7, 7, 7, 6, 6, 6, 6, 5, 5, 5, 5, 4, 4, 4}},
      {40, 19, 10, 31, 12,
       {5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5},
       {9, 8, 8, 8, 8, 7, 7, 7, 7, 6, 6, 6, 5}},
      {25, 18, 10, 25, 12,
       {4, 3, 3, 3, 3, 3, 3, 4, 4, 4, 4, 4, 4},
       {9, 8, 7, 8, 7, 6, 7, 6, 5, 5, 4, 4, 4}},
      {100, 20, 11, 41, 12,
       {7, 8, 7, 8, 7, 8, 7, 8, 7, 8, 7, 8, 8},
       {11, 11, 10, 10, 10, 10, 9, 9, 9, 8, 8, 8, 8}}};
  return rows;
}

std::string join(const std::vector<int>& v) {
  std::string s = "[";
  for (size_t i = 0; i < v.size(); ++i)
    s += std::to_string(v[i]) + (i + 1 < v.size() ? "," : "");
  return s + "]";
}

int array_distance(const std::vector<int>& a, const std::vector<int>& b) {
  int d = static_cast<int>(a.size() > b.size() ? a.size() - b.size()
                                               : b.size() - a.size());
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i)
    d += std::abs(a[i] - b[i]);
  return d;
}

void report() {
  std::printf("==== Table 1: case study data and results (samples) ====\n");
  const auto apps = casestudy::all_apps();
  for (size_t i = 0; i < apps.size(); ++i) {
    const switching::DwellTables t = bench::tables_of(apps[i]);
    const PaperRow& p = paper_rows()[i];
    std::printf("%s  (r=%d, J*=%d)\n", apps[i].name.c_str(),
                apps[i].min_interarrival, apps[i].settling_requirement);
    std::printf("  JT   measured %2d   paper %2d\n", t.settling_tt, p.jt);
    std::printf("  JE   measured %2d   paper %2d\n", t.settling_et, p.je);
    std::printf("  T*w  measured %2d   paper %2d\n", t.t_star_w, p.t_star);
    std::printf("  T-dw measured %s\n       paper    %s   (L1 distance %d)\n",
                join(t.t_minus).c_str(), join(p.t_minus).c_str(),
                array_distance(t.t_minus, p.t_minus));
    std::printf("  T+dw measured %s\n       paper    %s   (L1 distance %d)\n",
                join(t.t_plus).c_str(), join(p.t_plus).c_str(),
                array_distance(t.t_plus, p.t_plus));
  }
  std::printf("\n");
}

void BM_DwellTables(benchmark::State& state) {
  const auto apps = casestudy::all_apps();
  const casestudy::App& app = apps[static_cast<size_t>(state.range(0))];
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  const auto spec = bench::dwell_spec(app);
  for (auto _ : state) {
    benchmark::DoNotOptimize(switching::compute_dwell_tables(loop, spec));
  }
  state.SetLabel(app.name);
}
BENCHMARK(BM_DwellTables)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

}  // namespace

TTDIM_BENCH_MAIN(report)
