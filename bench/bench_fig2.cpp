// Reproduces Fig. 2 of the paper: response curves of the DC-motor position
// system under five strategies — pure KT, pure KsE, pure KuE, and the
// 4 ME + 4 MT + ME switching pattern with the stable and the unstable
// gain pair. Prints the y(t) series and the settling times the paper
// quotes (0.18 s, 0.68 s, 0.28 s, 0.58 s), then benchmarks the switched
// simulation.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace ttdim;

struct Curve {
  const char* label;
  control::Trace trace;
  double settling_s = -1.0;
};

std::vector<Curve> curves() {
  const casestudy::App app = casestudy::c1();
  const control::SwitchedLoop stable(app.plant, app.kt,
                                     casestudy::ke_stable());
  const control::SwitchedLoop unstable(app.plant, app.kt,
                                       casestudy::ke_unstable());
  const control::SettlingSpec spec{casestudy::kSettlingTol, 2000};
  const double h = app.plant.h();

  std::vector<Curve> out;
  const auto add = [&](const char* label, const control::SwitchedLoop& loop,
                       int wait, int dwell) {
    Curve c{label, loop.simulate_pattern(wait, dwell, spec), -1.0};
    const auto j = control::settling_samples(c.trace, spec.abs_tol);
    if (j.has_value()) c.settling_s = *j * h;
    out.push_back(std::move(c));
  };
  add("KT", stable, 0, spec.horizon);          // always in MT
  add("KsE", stable, 0, 0);                    // never in MT
  add("KuE", unstable, 0, 0);
  add("4KsE+4KT+KsE", stable, 4, 4);           // paper's stable pattern
  add("4KuE+4KT+KuE", unstable, 4, 4);         // paper's unstable pattern
  return out;
}

void report() {
  std::printf("==== Fig. 2: response curves (DC motor, Sec. 3.1) ====\n");
  const std::vector<Curve> cs = curves();
  std::printf("settling times (paper: KT 0.18, KsE/KuE 0.68, stable "
              "pattern 0.28, unstable pattern 0.58 s):\n");
  for (const Curve& c : cs)
    std::printf("  %-14s J = %.2f s\n", c.label, c.settling_s);
  std::printf("\ny(t) series, t = 0..1 s step 0.04 s:\n%-8s", "t");
  for (const Curve& c : cs) std::printf("%14s", c.label);
  std::printf("\n");
  for (size_t k = 0; k < 50; k += 2) {
    std::printf("%-8.2f", k * 0.02);
    for (const Curve& c : cs) std::printf("%14.4f", c.trace[k].y);
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_SwitchedPattern(benchmark::State& state) {
  const casestudy::App app = casestudy::c1();
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  const control::SettlingSpec spec{casestudy::kSettlingTol, 2000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(loop.settling_of_pattern(4, 4, spec));
  }
}
BENCHMARK(BM_SwitchedPattern)->Unit(benchmark::kMicrosecond);

void BM_PureModeSimulation(benchmark::State& state) {
  const casestudy::App app = casestudy::c1();
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  const control::SettlingSpec spec{casestudy::kSettlingTol, 2000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(loop.simulate_pattern(0, 0, spec));
  }
}
BENCHMARK(BM_PureModeSimulation)->Unit(benchmark::kMicrosecond);

}  // namespace

TTDIM_BENCH_MAIN(report)
