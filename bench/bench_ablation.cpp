// Ablations of the design choices behind the paper's result:
//  (a) the preemption window [T-dw, T+dw): what happens to slot counts if
//      occupants are never preemptable (hold to T+dw) or always evicted at
//      T-dw (no free performance top-up)?
//  (b) Tw granularity: coarser dwell tables vs. provisioning quality;
//  (c) mapping heuristic: first-fit vs best-fit, and the paper's sort
//      order vs alternatives.
#include <cstdio>

#include "bench_common.h"
#include "mapping/first_fit.h"
#include "sched/slot_scheduler.h"
#include "verify/discrete.h"

namespace {

using namespace ttdim;
using mapping::SlotAssignment;
using verify::AppTiming;

std::vector<AppTiming> case_timings() {
  std::vector<AppTiming> out;
  for (const casestudy::App& app : casestudy::all_apps())
    out.push_back(bench::timing_of(app));
  return out;
}

/// Occupants hold to T+dw and are never preemptable in between.
AppTiming no_preemption_variant(AppTiming t) {
  t.t_minus = t.t_plus;
  return t;
}

/// Occupants are always evicted at T-dw (no performance top-up).
AppTiming eager_evict_variant(AppTiming t) {
  t.t_plus = t.t_minus;
  return t;
}

mapping::SlotOracle model_checking_oracle() {
  return [](const std::vector<AppTiming>& slot_apps) {
    return verify::DiscreteVerifier(slot_apps).verify().safe;
  };
}

void print_slots(const char* label, const std::vector<AppTiming>& apps,
                 const SlotAssignment& a, int oracle_calls) {
  std::printf("%-42s %d slot(s), %2d admission checks: ", label,
              a.slot_count(), oracle_calls);
  for (const std::vector<int>& slot : a.slots) {
    std::printf("{");
    for (size_t j = 0; j < slot.size(); ++j)
      std::printf("%s%s", apps[static_cast<size_t>(slot[j])].name.c_str(),
                  j + 1 < slot.size() ? "," : "");
    std::printf("} ");
  }
  std::printf("\n");
}

void run_variant(const char* label,
                 const std::vector<AppTiming>& apps,
                 mapping::SortOrder order_kind, bool use_best_fit) {
  mapping::CountingOracle counter(model_checking_oracle());
  const std::vector<int> order = mapping::sort_order(apps, order_kind);
  const SlotAssignment a =
      use_best_fit ? mapping::best_fit(apps, order, counter.oracle())
                   : mapping::first_fit(apps, order, counter.oracle());
  print_slots(label, apps, a, counter.calls());
}

void report() {
  std::printf("==== Ablations: preemption window, granularity, mapping "
              "heuristic ====\n");
  const std::vector<AppTiming> paper = case_timings();

  std::printf("\n(a) strategy variants (admission: exact model checking)\n");
  run_variant("paper: preemptable in [T-dw, T+dw)", paper,
              mapping::SortOrder::kPaper, false);
  std::vector<AppTiming> no_preempt;
  std::vector<AppTiming> eager;
  for (const AppTiming& t : paper) {
    no_preempt.push_back(no_preemption_variant(t));
    eager.push_back(eager_evict_variant(t));
  }
  run_variant("no preemption (hold to T+dw)", no_preempt,
              mapping::SortOrder::kPaper, false);
  run_variant("eager eviction (always leave at T-dw)", eager,
              mapping::SortOrder::kPaper, false);

  std::printf("\n(b) Tw granularity (dwell tables coarsened, conservative "
              "round-up)\n");
  for (int g : {1, 2, 4}) {
    std::vector<AppTiming> coarse;
    for (const casestudy::App& app : casestudy::all_apps()) {
      const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
      auto spec = bench::dwell_spec(app);
      spec.tw_granularity = g;
      coarse.push_back(verify::make_app_timing(
          app.name, switching::compute_dwell_tables(loop, spec),
          app.min_interarrival));
    }
    run_variant(("granularity " + std::to_string(g)).c_str(), coarse,
                mapping::SortOrder::kPaper, false);
  }

  std::printf("\n(b2) slack-aware preemption postponement (paper Sec. 6 "
              "future work)\n");
  {
    verify::DiscreteVerifier::Options slack;
    slack.policy = verify::SlotPolicy::kSlackAware;
    const std::vector<AppTiming> s1{paper[0], paper[4], paper[3], paper[2]};
    const std::vector<AppTiming> s2{paper[5], paper[1]};
    std::printf("  S1 verified under slack-aware policy: %s\n",
                verify::DiscreteVerifier(s1).verify(slack).safe ? "safe"
                                                                : "UNSAFE");
    std::printf("  S2 verified under slack-aware policy: %s\n",
                verify::DiscreteVerifier(s2).verify(slack).safe ? "safe"
                                                                : "UNSAFE");
    // Occupant benefit on a light scenario: C1 disturbed, C5 two samples
    // later.
    sched::Scenario sc;
    sc.horizon = 60;
    sc.disturbances = {{0}, {2}};
    const std::vector<AppTiming> pair{paper[0], paper[4]};
    const auto count_tt = [&](verify::SlotPolicy policy) {
      const sched::ScheduleResult r = sched::simulate_slot(pair, sc, policy);
      int n = 0;
      for (bool b : r.tt_mask[0]) n += b ? 1 : 0;
      return n;
    };
    std::printf("  C1 TT samples, paper policy: %d; slack-aware: %d "
                "(longer dwell -> better settling, same guarantees)\n",
                count_tt(verify::SlotPolicy::kPaper),
                count_tt(verify::SlotPolicy::kSlackAware));
  }

  std::printf("\n(c) mapping heuristic\n");
  run_variant("first-fit, paper order", paper, mapping::SortOrder::kPaper,
              false);
  run_variant("first-fit, input order", paper, mapping::SortOrder::kInput,
              false);
  run_variant("first-fit, descending T*w", paper,
              mapping::SortOrder::kTstarDescending, false);
  run_variant("best-fit, paper order", paper, mapping::SortOrder::kPaper,
              true);
  std::printf("\n");
}

void BM_AblationNoPreemptAdmission(benchmark::State& state) {
  std::vector<AppTiming> no_preempt;
  for (const AppTiming& t : case_timings())
    no_preempt.push_back(no_preemption_variant(t));
  // Same S1 population as the paper's hard instance.
  const std::vector<AppTiming> slot{no_preempt[0], no_preempt[4],
                                    no_preempt[3], no_preempt[2]};
  const verify::DiscreteVerifier verifier(slot);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify());
  }
}
BENCHMARK(BM_AblationNoPreemptAdmission)->Unit(benchmark::kMillisecond);

}  // namespace

TTDIM_BENCH_MAIN(report)
