// Reproduces Fig. 8 of the paper: responses of C1, C3, C4 and C5 sharing
// TT slot S1 when disturbances hit all four simultaneously. Prints the
// slot occupancy (the shaded regions of the figure), the per-application
// y(t) series and the settling summary, then benchmarks the co-simulation.
#include <cstdio>

#include "bench_common.h"
#include "core/dimensioning.h"

namespace {

using namespace ttdim;

std::vector<core::AppSolution> slot_s1_apps() {
  // Assemble the verified S1 population {C1, C5, C4, C3} (paper Sec. 5).
  std::vector<core::AppSolution> out;
  for (const casestudy::App& app :
       {casestudy::c1(), casestudy::c5(), casestudy::c4(), casestudy::c3()}) {
    core::AppSolution s{{app.name, app.plant, app.kt, app.ke,
                         app.min_interarrival, app.settling_requirement},
                        bench::tables_of(app),
                        bench::timing_of(app),
                        {}};
    out.push_back(std::move(s));
  }
  return out;
}

sched::Scenario simultaneous(size_t napps, int horizon) {
  sched::Scenario sc;
  sc.horizon = horizon;
  sc.disturbances.assign(napps, {0});
  return sc;
}

void report() {
  std::printf("==== Fig. 8: responses of C1, C3, C4, C5 sharing slot S1 "
              "====\n");
  const std::vector<core::AppSolution> apps = slot_s1_apps();
  const sched::Scenario scenario = simultaneous(apps.size(), 60);
  const core::CoSimResult sim =
      core::cosimulate(apps, scenario, casestudy::kSettlingTol);

  std::printf("slot occupancy (tick: app):\n  ");
  for (int t = 0; t < 30; ++t) {
    const int occ = sim.schedule.occupant[static_cast<size_t>(t)];
    std::printf("%s%s", occ < 0 ? "--" : apps[static_cast<size_t>(occ)]
                                             .spec.name.c_str(),
                t % 10 == 9 ? "\n  " : " ");
  }
  std::printf("\nevents:\n%s",
              [&] {
                std::vector<verify::AppTiming> timings;
                for (const auto& a : apps) timings.push_back(a.timing);
                return sim.schedule.describe_events(timings);
              }()
                  .c_str());

  std::printf("\nsettling summary (paper: all requirements met; C3 holds "
              "T+dw unpreempted, the others leave at T-dw):\n");
  for (size_t i = 0; i < apps.size(); ++i)
    std::printf("  %s: J = %d samples (%.2f s), J* = %d  %s\n",
                apps[i].spec.name.c_str(), sim.settling[i].value_or(-1),
                sim.settling[i].value_or(0) * casestudy::kSamplingPeriod,
                apps[i].spec.settling_requirement,
                sim.settling[i].value_or(INT32_MAX) <=
                        apps[i].spec.settling_requirement
                    ? "OK"
                    : "VIOLATED");

  std::printf("\ny(t) series, t = 0..0.5 s step 0.04 s:\n%-8s", "t");
  for (const auto& a : apps) std::printf("%10s", a.spec.name.c_str());
  std::printf("\n");
  for (size_t k = 0; k < 26; k += 2) {
    std::printf("%-8.2f", k * casestudy::kSamplingPeriod);
    for (const auto& a : apps) {
      const size_t idx = &a - apps.data();
      std::printf("%10.4f", sim.traces[idx][k].y);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_Fig8CoSimulation(benchmark::State& state) {
  const std::vector<core::AppSolution> apps = slot_s1_apps();
  const sched::Scenario scenario = simultaneous(apps.size(), 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::cosimulate(apps, scenario, casestudy::kSettlingTol));
  }
}
BENCHMARK(BM_Fig8CoSimulation)->Unit(benchmark::kMicrosecond);

void BM_Fig8SchedulerOnly(benchmark::State& state) {
  const std::vector<core::AppSolution> apps = slot_s1_apps();
  std::vector<verify::AppTiming> timings;
  for (const auto& a : apps) timings.push_back(a.timing);
  const sched::Scenario scenario = simultaneous(apps.size(), 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::simulate_slot(timings, scenario));
  }
}
BENCHMARK(BM_Fig8SchedulerOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

TTDIM_BENCH_MAIN(report)
