// Batch-dimensioning throughput: many independent systems dimensioned
// concurrently by engine::BatchRunner. The report runs a 32-system batch
// at 1/2/4/8 threads, checks the results are byte-identical across thread
// counts (determinism is the contract that makes the parallelism free),
// and prints the wall-clock speedup. Speedup is bounded by the machine's
// core count — on an N-core box expect ~min(threads, N)x, near-linear
// until the cores run out.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/dimensioning.h"
#include "engine/analysis/analysis_cache.h"
#include "engine/batch_runner.h"
#include "engine/cache/disk_cache.h"
#include "engine/fingerprint.h"
#include "engine/oracle/snapshot_cache.h"
#include "engine/oracle/verdict_cache.h"

namespace {

using namespace ttdim;

std::vector<engine::BatchJob> make_batch(int systems) {
  // Heterogeneous single-app systems derived from the paper's cruise
  // controller: the inter-arrival sweep changes each system's timing
  // abstraction (and therefore its fingerprint) without exploding the
  // per-system analysis cost.
  std::vector<engine::BatchJob> jobs;
  const casestudy::App base = casestudy::c6();
  for (int i = 0; i < systems; ++i) {
    engine::BatchJob job;
    core::AppSpec spec{base.name + "_" + std::to_string(i), base.plant,
                       base.kt, base.ke, 40 + 5 * (i % 16),
                       base.settling_requirement};
    job.specs = {spec};
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::string batch_fingerprint(const std::vector<engine::BatchOutcome>& out) {
  std::string fp;
  for (const engine::BatchOutcome& o : out)
    fp += o.ok() ? engine::fingerprint(*o.solution) : ("error: " + o.error);
  return fp;
}

void report() {
  constexpr int kSystems = 32;
  std::printf("==== batch dimensioning: %d independent systems ====\n",
              kSystems);
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());
  const std::vector<engine::BatchJob> jobs = make_batch(kSystems);

  double serial_seconds = 0.0;
  std::string serial_fp;
  bool all_identical = true;
  std::printf("%8s %12s %9s  %s\n", "threads", "wall [s]", "speedup",
              "results");
  for (int threads : {1, 2, 4, 8}) {
    const engine::BatchRunner runner(threads);
    const auto t0 = std::chrono::steady_clock::now();
    const engine::BatchReport report = runner.run(jobs);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::string fp = batch_fingerprint(report.outcomes);
    if (threads == 1) {
      serial_seconds = seconds;
      serial_fp = fp;
    }
    const bool identical = fp == serial_fp;
    all_identical = all_identical && identical;
    std::printf("%8d %12.2f %8.2fx  %s\n", threads, seconds,
                serial_seconds / seconds,
                identical ? "identical to 1-thread" : "MISMATCH");
    if (threads == 1)
      std::printf("         aggregate: %s\n", report.summary().c_str());
  }
  std::printf("\nresults across thread counts: %s\n\n",
              all_identical ? "byte-identical" : "MISMATCH (bug!)");
  // CI runs this report as a determinism gate; a mismatch must fail the
  // process, not just print.
  if (!all_identical) std::exit(1);
}

std::vector<core::AppSpec> case_study_specs() {
  std::vector<core::AppSpec> specs;
  for (const casestudy::App& app : casestudy::all_apps())
    specs.push_back({app.name, app.plant, app.kt, app.ke,
                     app.min_interarrival, app.settling_requirement});
  return specs;
}

void BM_CaseStudySolveAnalysisWarm(benchmark::State& state) {
  // The analysis tier in isolation: a shared AnalysisCache warmed by one
  // solve, every other cache private and cold per iteration — so the
  // measured solves answer all six per-app stability/dwell analyses from
  // the cache (~microseconds) but still prove the mapping fresh. The
  // gap to BM_CaseStudySolve is the memoized ~stability+dwell cost.
  const std::vector<core::AppSpec> specs = case_study_specs();
  core::SolveOptions options;
  options.analysis_cache = std::make_shared<engine::analysis::AnalysisCache>();
  benchmark::DoNotOptimize(core::solve(specs, options));  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(specs, options));
  }
}
BENCHMARK(BM_CaseStudySolveAnalysisWarm)->Unit(benchmark::kMillisecond);

void BM_CaseStudySolveSubsumptionWarm(benchmark::State& state) {
  // The cross-config subsumption tier: all caches shared and warmed by
  // one solve of the full six-app case study, then the measured solve is
  // the five-app variant without C6 — a system whose first-fit probes
  // were never posed exactly, so the exact tier misses, yet every probe
  // is answered by multiset inclusion against the proven populations
  // (subset of a safe slot, superset of the refuted one): the whole
  // mapping phase runs with zero verifier BFS. The SolveStats
  // subsumption counters printed after the timing loop are the
  // fewer-fresh-proofs acceptance evidence.
  const std::vector<core::AppSpec> specs = case_study_specs();
  std::vector<core::AppSpec> five = specs;
  five.pop_back();  // drop C6
  core::SolveOptions options;
  options.verdict_cache = std::make_shared<engine::oracle::VerdictCache>();
  options.snapshot_cache = std::make_shared<engine::oracle::SnapshotCache>();
  options.analysis_cache = std::make_shared<engine::analysis::AnalysisCache>();
  benchmark::DoNotOptimize(core::solve(specs, options));  // warm all caches
  engine::oracle::SolveStats last;
  for (auto _ : state) {
    const core::Solution solution = core::solve(five, options);
    last = solution.stats;
    benchmark::DoNotOptimize(&solution);
  }
  state.counters["subsumption_hits"] =
      static_cast<double>(last.subsumption_hits);
  state.counters["subsumption_cuts"] =
      static_cast<double>(last.subsumption_cuts);
  // cache_misses counts every verifier run (prefix-seeded AND from
  // scratch); subtracting prefix_hits leaves the true fresh-BFS count.
  state.counters["verifier_runs"] = static_cast<double>(last.cache_misses);
  state.counters["fresh_bfs"] =
      static_cast<double>(last.cache_misses - last.prefix_hits);
}
BENCHMARK(BM_CaseStudySolveSubsumptionWarm)->Unit(benchmark::kMillisecond);

void BM_CaseStudySolveDiskWarm(benchmark::State& state) {
  // The persistent tier in restart-warm isolation: one solve populates a
  // disk cache directory, then every measured iteration builds *fresh*
  // SolveOptions whose only non-default field is the shared DiskCache —
  // private cold memory caches, so every analysis result and admission
  // verdict is answered by the disk tier exactly as a restarted process
  // (or a CI run restoring the directory) would see it. The counters
  // printed after the loop are the zero-recompute acceptance evidence.
  namespace fs = std::filesystem;
  const std::vector<core::AppSpec> specs = case_study_specs();
  const fs::path dir =
      fs::temp_directory_path() / "ttdim-bench-disk-cache";
  fs::remove_all(dir);
  const auto disk =
      std::make_shared<engine::cache::DiskCache>(dir.string());
  {
    core::SolveOptions warm;
    warm.disk_cache = disk;
    benchmark::DoNotOptimize(core::solve(specs, warm));  // populate disk
  }
  engine::oracle::SolveStats last;
  for (auto _ : state) {
    core::SolveOptions options;  // fresh private memory caches each time
    options.disk_cache = disk;
    const core::Solution solution = core::solve(specs, options);
    last = solution.stats;
    benchmark::DoNotOptimize(&solution);
  }
  state.counters["disk_hits"] = static_cast<double>(last.disk_hits);
  state.counters["analysis_misses"] =
      static_cast<double>(last.analysis_misses);
  state.counters["verifier_runs"] = static_cast<double>(last.cache_misses);
  fs::remove_all(dir);
}
BENCHMARK(BM_CaseStudySolveDiskWarm)->Unit(benchmark::kMillisecond);

void BM_BatchSolve(benchmark::State& state) {
  const std::vector<engine::BatchJob> jobs =
      make_batch(static_cast<int>(state.range(1)));
  const engine::BatchRunner runner(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.solve_all(jobs));
  }
}
BENCHMARK(BM_BatchSolve)
    ->Args({1, 8})
    ->Args({4, 8})
    ->Args({8, 8})
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace

TTDIM_BENCH_MAIN(report)
