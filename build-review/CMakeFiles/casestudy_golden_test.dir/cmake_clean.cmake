file(REMOVE_RECURSE
  "CMakeFiles/casestudy_golden_test.dir/tests/casestudy_golden_test.cpp.o"
  "CMakeFiles/casestudy_golden_test.dir/tests/casestudy_golden_test.cpp.o.d"
  "casestudy_golden_test"
  "casestudy_golden_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casestudy_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
