# Empty dependencies file for scenario_generator_test.
# This may be replaced when dependencies are built.
