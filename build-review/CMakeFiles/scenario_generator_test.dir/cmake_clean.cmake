file(REMOVE_RECURSE
  "CMakeFiles/scenario_generator_test.dir/tests/scenario_generator_test.cpp.o"
  "CMakeFiles/scenario_generator_test.dir/tests/scenario_generator_test.cpp.o.d"
  "scenario_generator_test"
  "scenario_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
