file(REMOVE_RECURSE
  "CMakeFiles/example_custom_design.dir/examples/custom_design.cpp.o"
  "CMakeFiles/example_custom_design.dir/examples/custom_design.cpp.o.d"
  "custom_design"
  "custom_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
