# Empty compiler generated dependencies file for example_custom_design.
# This may be replaced when dependencies are built.
