file(REMOVE_RECURSE
  "CMakeFiles/bus_simulator_test.dir/tests/bus_simulator_test.cpp.o"
  "CMakeFiles/bus_simulator_test.dir/tests/bus_simulator_test.cpp.o.d"
  "bus_simulator_test"
  "bus_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
