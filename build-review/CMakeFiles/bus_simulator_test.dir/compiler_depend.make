# Empty compiler generated dependencies file for bus_simulator_test.
# This may be replaced when dependencies are built.
