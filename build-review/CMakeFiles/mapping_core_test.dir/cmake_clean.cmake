file(REMOVE_RECURSE
  "CMakeFiles/mapping_core_test.dir/tests/mapping_core_test.cpp.o"
  "CMakeFiles/mapping_core_test.dir/tests/mapping_core_test.cpp.o.d"
  "mapping_core_test"
  "mapping_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
