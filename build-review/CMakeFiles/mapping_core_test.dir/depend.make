# Empty dependencies file for mapping_core_test.
# This may be replaced when dependencies are built.
