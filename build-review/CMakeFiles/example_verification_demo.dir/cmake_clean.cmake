file(REMOVE_RECURSE
  "CMakeFiles/example_verification_demo.dir/examples/verification_demo.cpp.o"
  "CMakeFiles/example_verification_demo.dir/examples/verification_demo.cpp.o.d"
  "verification_demo"
  "verification_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_verification_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
