# Empty dependencies file for example_verification_demo.
# This may be replaced when dependencies are built.
