file(REMOVE_RECURSE
  "CMakeFiles/c2d_test.dir/tests/c2d_test.cpp.o"
  "CMakeFiles/c2d_test.dir/tests/c2d_test.cpp.o.d"
  "c2d_test"
  "c2d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
