# Empty compiler generated dependencies file for c2d_test.
# This may be replaced when dependencies are built.
