# Empty dependencies file for ttdim.
# This may be replaced when dependencies are built.
