file(REMOVE_RECURSE
  "libttdim.a"
)
