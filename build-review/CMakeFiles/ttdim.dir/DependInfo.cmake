
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/casestudy/apps.cpp" "CMakeFiles/ttdim.dir/src/casestudy/apps.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/casestudy/apps.cpp.o.d"
  "/root/repo/src/control/c2d.cpp" "CMakeFiles/ttdim.dir/src/control/c2d.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/control/c2d.cpp.o.d"
  "/root/repo/src/control/design.cpp" "CMakeFiles/ttdim.dir/src/control/design.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/control/design.cpp.o.d"
  "/root/repo/src/control/lti.cpp" "CMakeFiles/ttdim.dir/src/control/lti.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/control/lti.cpp.o.d"
  "/root/repo/src/control/sim.cpp" "CMakeFiles/ttdim.dir/src/control/sim.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/control/sim.cpp.o.d"
  "/root/repo/src/core/dimensioning.cpp" "CMakeFiles/ttdim.dir/src/core/dimensioning.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/core/dimensioning.cpp.o.d"
  "/root/repo/src/engine/batch_runner.cpp" "CMakeFiles/ttdim.dir/src/engine/batch_runner.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/engine/batch_runner.cpp.o.d"
  "/root/repo/src/engine/fingerprint.cpp" "CMakeFiles/ttdim.dir/src/engine/fingerprint.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/engine/fingerprint.cpp.o.d"
  "/root/repo/src/engine/oracle/admission_oracle.cpp" "CMakeFiles/ttdim.dir/src/engine/oracle/admission_oracle.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/engine/oracle/admission_oracle.cpp.o.d"
  "/root/repo/src/engine/oracle/dwell_search.cpp" "CMakeFiles/ttdim.dir/src/engine/oracle/dwell_search.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/engine/oracle/dwell_search.cpp.o.d"
  "/root/repo/src/engine/oracle/incremental_oracle.cpp" "CMakeFiles/ttdim.dir/src/engine/oracle/incremental_oracle.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/engine/oracle/incremental_oracle.cpp.o.d"
  "/root/repo/src/engine/oracle/slot_config_key.cpp" "CMakeFiles/ttdim.dir/src/engine/oracle/slot_config_key.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/engine/oracle/slot_config_key.cpp.o.d"
  "/root/repo/src/engine/oracle/snapshot_cache.cpp" "CMakeFiles/ttdim.dir/src/engine/oracle/snapshot_cache.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/engine/oracle/snapshot_cache.cpp.o.d"
  "/root/repo/src/engine/oracle/solve_stats.cpp" "CMakeFiles/ttdim.dir/src/engine/oracle/solve_stats.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/engine/oracle/solve_stats.cpp.o.d"
  "/root/repo/src/engine/oracle/verdict_cache.cpp" "CMakeFiles/ttdim.dir/src/engine/oracle/verdict_cache.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/engine/oracle/verdict_cache.cpp.o.d"
  "/root/repo/src/engine/parallel_for.cpp" "CMakeFiles/ttdim.dir/src/engine/parallel_for.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/engine/parallel_for.cpp.o.d"
  "/root/repo/src/engine/scenario_generator.cpp" "CMakeFiles/ttdim.dir/src/engine/scenario_generator.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/engine/scenario_generator.cpp.o.d"
  "/root/repo/src/flexray/bus.cpp" "CMakeFiles/ttdim.dir/src/flexray/bus.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/flexray/bus.cpp.o.d"
  "/root/repo/src/flexray/middleware.cpp" "CMakeFiles/ttdim.dir/src/flexray/middleware.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/flexray/middleware.cpp.o.d"
  "/root/repo/src/flexray/simulator.cpp" "CMakeFiles/ttdim.dir/src/flexray/simulator.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/flexray/simulator.cpp.o.d"
  "/root/repo/src/linalg/eig.cpp" "CMakeFiles/ttdim.dir/src/linalg/eig.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/linalg/eig.cpp.o.d"
  "/root/repo/src/linalg/lyap.cpp" "CMakeFiles/ttdim.dir/src/linalg/lyap.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/linalg/lyap.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "CMakeFiles/ttdim.dir/src/linalg/matrix.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/solve.cpp" "CMakeFiles/ttdim.dir/src/linalg/solve.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/linalg/solve.cpp.o.d"
  "/root/repo/src/mapping/first_fit.cpp" "CMakeFiles/ttdim.dir/src/mapping/first_fit.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/mapping/first_fit.cpp.o.d"
  "/root/repo/src/sched/baseline.cpp" "CMakeFiles/ttdim.dir/src/sched/baseline.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/sched/baseline.cpp.o.d"
  "/root/repo/src/sched/slot_scheduler.cpp" "CMakeFiles/ttdim.dir/src/sched/slot_scheduler.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/sched/slot_scheduler.cpp.o.d"
  "/root/repo/src/sched/system_scheduler.cpp" "CMakeFiles/ttdim.dir/src/sched/system_scheduler.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/sched/system_scheduler.cpp.o.d"
  "/root/repo/src/switching/dwell.cpp" "CMakeFiles/ttdim.dir/src/switching/dwell.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/switching/dwell.cpp.o.d"
  "/root/repo/src/ta/dbm.cpp" "CMakeFiles/ttdim.dir/src/ta/dbm.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/ta/dbm.cpp.o.d"
  "/root/repo/src/ta/network.cpp" "CMakeFiles/ttdim.dir/src/ta/network.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/ta/network.cpp.o.d"
  "/root/repo/src/verify/app_timing.cpp" "CMakeFiles/ttdim.dir/src/verify/app_timing.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/verify/app_timing.cpp.o.d"
  "/root/repo/src/verify/bounds.cpp" "CMakeFiles/ttdim.dir/src/verify/bounds.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/verify/bounds.cpp.o.d"
  "/root/repo/src/verify/discrete.cpp" "CMakeFiles/ttdim.dir/src/verify/discrete.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/verify/discrete.cpp.o.d"
  "/root/repo/src/verify/policy.cpp" "CMakeFiles/ttdim.dir/src/verify/policy.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/verify/policy.cpp.o.d"
  "/root/repo/src/verify/ta_model.cpp" "CMakeFiles/ttdim.dir/src/verify/ta_model.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/verify/ta_model.cpp.o.d"
  "/root/repo/src/verify/table_io.cpp" "CMakeFiles/ttdim.dir/src/verify/table_io.cpp.o" "gcc" "CMakeFiles/ttdim.dir/src/verify/table_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
