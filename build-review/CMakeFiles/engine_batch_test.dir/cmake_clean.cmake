file(REMOVE_RECURSE
  "CMakeFiles/engine_batch_test.dir/tests/engine_batch_test.cpp.o"
  "CMakeFiles/engine_batch_test.dir/tests/engine_batch_test.cpp.o.d"
  "engine_batch_test"
  "engine_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
