# Empty dependencies file for engine_batch_test.
# This may be replaced when dependencies are built.
