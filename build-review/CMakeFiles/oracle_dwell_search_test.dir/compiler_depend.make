# Empty compiler generated dependencies file for oracle_dwell_search_test.
# This may be replaced when dependencies are built.
