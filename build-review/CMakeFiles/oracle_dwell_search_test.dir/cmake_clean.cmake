file(REMOVE_RECURSE
  "CMakeFiles/oracle_dwell_search_test.dir/tests/oracle_dwell_search_test.cpp.o"
  "CMakeFiles/oracle_dwell_search_test.dir/tests/oracle_dwell_search_test.cpp.o.d"
  "oracle_dwell_search_test"
  "oracle_dwell_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_dwell_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
