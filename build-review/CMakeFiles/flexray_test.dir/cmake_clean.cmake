file(REMOVE_RECURSE
  "CMakeFiles/flexray_test.dir/tests/flexray_test.cpp.o"
  "CMakeFiles/flexray_test.dir/tests/flexray_test.cpp.o.d"
  "flexray_test"
  "flexray_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexray_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
