# Empty dependencies file for flexray_test.
# This may be replaced when dependencies are built.
