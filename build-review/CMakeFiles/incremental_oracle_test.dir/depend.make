# Empty dependencies file for incremental_oracle_test.
# This may be replaced when dependencies are built.
