file(REMOVE_RECURSE
  "CMakeFiles/incremental_oracle_test.dir/tests/incremental_oracle_test.cpp.o"
  "CMakeFiles/incremental_oracle_test.dir/tests/incremental_oracle_test.cpp.o.d"
  "incremental_oracle_test"
  "incremental_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
