file(REMOVE_RECURSE
  "CMakeFiles/example_case_study.dir/examples/case_study.cpp.o"
  "CMakeFiles/example_case_study.dir/examples/case_study.cpp.o.d"
  "case_study"
  "case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
