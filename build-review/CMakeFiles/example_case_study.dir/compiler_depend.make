# Empty compiler generated dependencies file for example_case_study.
# This may be replaced when dependencies are built.
