file(REMOVE_RECURSE
  "CMakeFiles/discrete_large_test.dir/tests/discrete_large_test.cpp.o"
  "CMakeFiles/discrete_large_test.dir/tests/discrete_large_test.cpp.o.d"
  "discrete_large_test"
  "discrete_large_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discrete_large_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
