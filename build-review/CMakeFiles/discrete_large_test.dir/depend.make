# Empty dependencies file for discrete_large_test.
# This may be replaced when dependencies are built.
