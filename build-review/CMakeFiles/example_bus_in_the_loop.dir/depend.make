# Empty dependencies file for example_bus_in_the_loop.
# This may be replaced when dependencies are built.
