file(REMOVE_RECURSE
  "CMakeFiles/example_bus_in_the_loop.dir/examples/bus_in_the_loop.cpp.o"
  "CMakeFiles/example_bus_in_the_loop.dir/examples/bus_in_the_loop.cpp.o.d"
  "bus_in_the_loop"
  "bus_in_the_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bus_in_the_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
