file(REMOVE_RECURSE
  "CMakeFiles/ta_extensions_test.dir/tests/ta_extensions_test.cpp.o"
  "CMakeFiles/ta_extensions_test.dir/tests/ta_extensions_test.cpp.o.d"
  "ta_extensions_test"
  "ta_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ta_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
