# Empty compiler generated dependencies file for ta_extensions_test.
# This may be replaced when dependencies are built.
