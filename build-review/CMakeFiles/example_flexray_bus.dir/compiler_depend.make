# Empty compiler generated dependencies file for example_flexray_bus.
# This may be replaced when dependencies are built.
