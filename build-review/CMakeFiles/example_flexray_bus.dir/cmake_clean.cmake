file(REMOVE_RECURSE
  "CMakeFiles/example_flexray_bus.dir/examples/flexray_bus.cpp.o"
  "CMakeFiles/example_flexray_bus.dir/examples/flexray_bus.cpp.o.d"
  "flexray_bus"
  "flexray_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_flexray_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
