# Empty dependencies file for ta_test.
# This may be replaced when dependencies are built.
