file(REMOVE_RECURSE
  "CMakeFiles/ta_test.dir/tests/ta_test.cpp.o"
  "CMakeFiles/ta_test.dir/tests/ta_test.cpp.o.d"
  "ta_test"
  "ta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
