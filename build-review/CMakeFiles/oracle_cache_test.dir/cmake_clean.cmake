file(REMOVE_RECURSE
  "CMakeFiles/oracle_cache_test.dir/tests/oracle_cache_test.cpp.o"
  "CMakeFiles/oracle_cache_test.dir/tests/oracle_cache_test.cpp.o.d"
  "oracle_cache_test"
  "oracle_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
