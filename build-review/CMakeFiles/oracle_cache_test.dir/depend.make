# Empty dependencies file for oracle_cache_test.
# This may be replaced when dependencies are built.
