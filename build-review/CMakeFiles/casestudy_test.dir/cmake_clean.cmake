file(REMOVE_RECURSE
  "CMakeFiles/casestudy_test.dir/tests/casestudy_test.cpp.o"
  "CMakeFiles/casestudy_test.dir/tests/casestudy_test.cpp.o.d"
  "casestudy_test"
  "casestudy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casestudy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
