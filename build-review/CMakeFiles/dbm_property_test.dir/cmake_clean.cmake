file(REMOVE_RECURSE
  "CMakeFiles/dbm_property_test.dir/tests/dbm_property_test.cpp.o"
  "CMakeFiles/dbm_property_test.dir/tests/dbm_property_test.cpp.o.d"
  "dbm_property_test"
  "dbm_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
