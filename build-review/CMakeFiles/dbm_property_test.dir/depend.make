# Empty dependencies file for dbm_property_test.
# This may be replaced when dependencies are built.
