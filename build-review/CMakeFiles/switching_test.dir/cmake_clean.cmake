file(REMOVE_RECURSE
  "CMakeFiles/switching_test.dir/tests/switching_test.cpp.o"
  "CMakeFiles/switching_test.dir/tests/switching_test.cpp.o.d"
  "switching_test"
  "switching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
